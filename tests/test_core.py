"""Unit tests for the core architecture models: address generation, scalar
core, controller, timing simulator, energy and area."""

import numpy as np
import pytest

from repro.core import (
    AddressDecoder,
    AreaModel,
    EnergyCoefficients,
    EnergyModel,
    MachineConfig,
    MVEControllerModel,
    MVESimulator,
    ScalarCoreModel,
    WriteBuffer,
    address_range,
    cache_line_addresses,
    default_config,
    element_addresses,
    simulate_kernel,
)
from repro.intrinsics import MVEMachine
from repro.isa import (
    ArithmeticInstruction,
    DataType,
    MemoryInstruction,
    Opcode,
    ScalarBlock,
)
from repro.memory import FlatMemory
from repro.sram import BitParallelScheme, BitSerialScheme, get_scheme


def make_memory_instruction(**overrides):
    defaults = dict(
        dtype=DataType.INT32,
        register=0,
        base_address=0x1000,
        stride_modes=(1, 2),
        is_store=False,
        is_random=False,
        resolved_strides=(1, 4),
        shape_lengths=(4, 3),
        mask=(True, True, True),
    )
    defaults.update(overrides)
    return MemoryInstruction(Opcode.STRIDED_LOAD, **defaults)


class TestAddressGeneration:
    def test_element_addresses_strided(self):
        instr = make_memory_instruction()
        addresses = element_addresses(instr)
        assert addresses.size == 12
        assert addresses[0] == 0x1000
        assert addresses[1] == 0x1004          # dim0 stride 1 element
        assert addresses[4] == 0x1000 + 16     # dim1 stride 4 elements

    def test_element_addresses_masked(self):
        instr = make_memory_instruction(mask=(True, False, True))
        assert element_addresses(instr).size == 8

    def test_element_addresses_random(self):
        instr = make_memory_instruction(
            is_random=True,
            random_bases=(0x9000, 0x5000, 0x7000),
            resolved_strides=(1, 0),
        )
        addresses = element_addresses(instr)
        assert addresses[0] == 0x9000
        assert addresses[4] == 0x5000
        assert addresses[8] == 0x7000

    def test_cache_lines_deduplicated(self):
        instr = make_memory_instruction(shape_lengths=(16,), mask=(True,) * 16,
                                         stride_modes=(1,), resolved_strides=(1,))
        lines = cache_line_addresses(instr, line_bytes=64)
        assert lines.size == 1

    def test_address_range_covers_all_elements(self):
        instr = make_memory_instruction()
        low, high = address_range(instr)
        addresses = element_addresses(instr)
        assert low <= addresses.min()
        assert high >= addresses.max() + instr.dtype.bytes

    def test_address_range_random(self):
        instr = make_memory_instruction(
            is_random=True, random_bases=(0x5000, 0x9000), shape_lengths=(4, 2),
            mask=(True, True), resolved_strides=(1, 0),
        )
        low, high = address_range(instr)
        assert low == 0x5000 and high > 0x9000


class TestScalarCore:
    def test_scalar_block_cycles_scale_with_count(self):
        core = ScalarCoreModel(default_config())
        short = core.scalar_block_cycles(ScalarBlock(10))
        long = core.scalar_block_cycles(ScalarBlock(100))
        assert long > short

    def test_memory_ops_add_latency(self):
        core = ScalarCoreModel(default_config())
        plain = core.scalar_block_cycles(ScalarBlock(10))
        with_loads = core.scalar_block_cycles(ScalarBlock(10, loads=5))
        assert with_loads > plain

    def test_write_buffer_conflict_detection(self):
        buffer = WriteBuffer(entries=4)
        store = make_memory_instruction(is_store=True)
        buffer.push(store, completes_at=100.0, now=0.0)
        low, high = AddressDecoder.store_range(store)
        assert buffer.conflict_delay(low, low + 4, now=10.0) == pytest.approx(90.0)
        assert buffer.conflict_delay(high + 64, high + 128, now=10.0) == 0.0

    def test_write_buffer_backpressure(self):
        buffer = WriteBuffer(entries=1)
        store = make_memory_instruction(is_store=True)
        buffer.push(store, completes_at=50.0, now=0.0)
        resume = buffer.push(store, completes_at=80.0, now=10.0)
        assert resume == pytest.approx(50.0)

    def test_write_buffer_drains(self):
        buffer = WriteBuffer(entries=2)
        store = make_memory_instruction(is_store=True)
        buffer.push(store, completes_at=5.0, now=0.0)
        buffer.drain_completed(now=10.0)
        assert buffer.occupancy == 0


class TestControllerModel:
    def make(self, scheme=None, config=None):
        config = config or default_config()
        return MVEControllerModel(config.engine, scheme or BitSerialScheme())

    def test_placement_full_register(self):
        controller = self.make()
        instr = ArithmeticInstruction(Opcode.ADD, dtype=DataType.INT32,
                                      shape_lengths=(8192,), mask=())
        placement = controller.placement(instr, 32)
        assert placement.active_elements == 8192
        assert placement.lane_utilization == 1.0
        assert placement.cb_utilization == 1.0
        assert placement.repeats == 1

    def test_placement_partial_register(self):
        controller = self.make()
        instr = ArithmeticInstruction(Opcode.ADD, dtype=DataType.INT32,
                                      shape_lengths=(128,), mask=())
        placement = controller.placement(instr, 32)
        assert placement.lane_utilization == pytest.approx(128 / 8192)
        assert placement.active_control_blocks == 1

    def test_placement_masked_dimension(self):
        controller = self.make()
        instr = ArithmeticInstruction(Opcode.ADD, dtype=DataType.INT32,
                                      shape_lengths=(64, 4), mask=(True, False, True, False))
        placement = controller.placement(instr, 32)
        assert placement.active_elements == 128

    def test_bit_parallel_needs_repeats(self):
        controller = self.make(scheme=BitParallelScheme())
        instr = ArithmeticInstruction(Opcode.ADD, dtype=DataType.INT32,
                                      shape_lengths=(8192,), mask=())
        placement = controller.placement(instr, 32)
        assert placement.repeats == 32

    def test_compute_cycles_follow_scheme(self):
        controller = self.make()
        add = ArithmeticInstruction(Opcode.ADD, dtype=DataType.INT32,
                                    shape_lengths=(8192,), mask=())
        mul = ArithmeticInstruction(Opcode.MUL, dtype=DataType.INT32,
                                    shape_lengths=(8192,), mask=())
        assert controller.compute_sram_cycles(add, 32, 1.5) == 32
        assert controller.compute_sram_cycles(mul, 32, 1.5) == 32 * 32 + 5 * 32

    def test_float_factor_applied(self):
        controller = self.make()
        fadd = ArithmeticInstruction(Opcode.ADD, dtype=DataType.FLOAT32,
                                     shape_lengths=(8192,), mask=())
        assert controller.compute_sram_cycles(fadd, 32, 2.0) == 64


class TestSimulator:
    def small_trace(self, n=1024, dtype=DataType.INT16):
        memory = FlatMemory()
        machine = MVEMachine(memory)
        a = memory.allocate_array(np.arange(n, dtype=dtype.numpy_dtype), dtype)
        b = memory.allocate_array(np.arange(n, dtype=dtype.numpy_dtype), dtype)
        out = memory.allocate(dtype, n)
        machine.vsetdimc(1)
        machine.vsetdiml(0, n)
        machine.scalar(20, loads=2)
        va = machine.vsld(dtype, a.address, (1,))
        vb = machine.vsld(dtype, b.address, (1,))
        machine.vsst(machine.vadd(va, vb), out.address, (1,))
        return machine.trace

    def test_cycle_breakdown_sums_below_total(self):
        result, _ = simulate_kernel(self.small_trace())
        assert result.total_cycles > 0
        busy = result.compute_cycles + result.data_access_cycles
        assert busy <= result.total_cycles * 1.01

    def test_instruction_counts(self):
        result, compiled = simulate_kernel(self.small_trace())
        assert result.vector_instructions["memory"] == 3
        assert result.vector_instructions["arithmetic"] == 1
        assert result.scalar_instructions == 20
        assert compiled.spill_count == 0

    def test_energy_positive_and_decomposed(self):
        result, _ = simulate_kernel(self.small_trace())
        assert result.energy_nj > 0
        assert result.energy.compute_nj > 0
        assert result.energy.data_access_nj > 0

    def test_more_work_takes_longer(self):
        small, _ = simulate_kernel(self.small_trace(n=512))
        large, _ = simulate_kernel(self.small_trace(n=8192))
        assert large.total_cycles > small.total_cycles

    def test_lower_precision_is_faster(self):
        int8, _ = simulate_kernel(self.small_trace(dtype=DataType.INT8))
        int32, _ = simulate_kernel(self.small_trace(dtype=DataType.INT32))
        assert int8.compute_cycles < int32.compute_cycles

    def test_warm_cache_faster_than_cold(self):
        trace = self.small_trace(n=8192)
        warm, _ = simulate_kernel(trace, warm_cache=True)
        cold, _ = simulate_kernel(trace, warm_cache=False)
        assert warm.data_access_cycles <= cold.data_access_cycles

    def test_scheme_changes_compute_time(self):
        trace = self.small_trace(n=8192, dtype=DataType.INT32)
        bs, _ = simulate_kernel(trace, scheme=get_scheme("bs"))
        ac, _ = simulate_kernel(trace, scheme=get_scheme("ac"))
        assert ac.compute_cycles > bs.compute_cycles

    def test_more_arrays_reduce_repeats(self):
        trace = self.small_trace(n=8192, dtype=DataType.INT32)
        base = default_config()
        small_engine = base.with_arrays(8)
        small, _ = simulate_kernel(trace, config=small_engine)
        large, _ = simulate_kernel(trace, config=base)
        assert large.total_cycles <= small.total_cycles

    def test_utilization_bounds(self):
        result, _ = simulate_kernel(self.small_trace())
        assert 0.0 <= result.lane_utilization <= 1.0
        assert 0.0 <= result.cb_utilization <= 1.0

    def test_time_units(self):
        result, _ = simulate_kernel(self.small_trace())
        assert result.time_ms == pytest.approx(result.time_us / 1000.0)

    def test_merged_results(self):
        a, _ = simulate_kernel(self.small_trace(n=512))
        b, _ = simulate_kernel(self.small_trace(n=1024))
        merged = a.merged_with(b)
        assert merged.total_cycles == pytest.approx(a.total_cycles + b.total_cycles)
        assert merged.energy_nj == pytest.approx(a.energy_nj + b.energy_nj)

    def test_simulator_reuse_with_reset(self):
        simulator = MVESimulator()
        trace = self.small_trace()
        from repro.compiler import compile_trace

        compiled = compile_trace(trace).trace
        first = simulator.run(compiled)
        second = simulator.run(compiled, reset_state=False)
        assert second.data_access_cycles <= first.data_access_cycles


class TestEnergyModel:
    def test_sram_energy_scales_with_lanes(self):
        model = EnergyModel()
        model.add_sram_compute(100, 1000)
        small = model.breakdown.compute_nj
        model.reset()
        model.add_sram_compute(100, 8000)
        assert model.breakdown.compute_nj > small

    def test_dram_dominates_cache(self):
        coefficients = EnergyCoefficients()
        assert coefficients.dram_line_access_pj > coefficients.llc_line_access_pj
        assert coefficients.llc_line_access_pj > coefficients.l2_line_access_pj

    def test_static_energy_scales_with_time(self):
        model = EnergyModel()
        model.add_static(1000)
        short = model.breakdown.static_nj
        model.reset()
        model.add_static(100000)
        assert model.breakdown.static_nj > short

    def test_total_is_sum_of_parts(self):
        model = EnergyModel()
        model.add_scalar(10)
        model.add_tmu(100)
        model.add_controller(5)
        breakdown = model.breakdown
        assert breakdown.total_nj == pytest.approx(
            breakdown.compute_nj + breakdown.data_access_nj + breakdown.cpu_nj
            + breakdown.static_nj
        )


class TestAreaModel:
    def test_table5_overhead_close_to_paper(self):
        report = AreaModel().report()
        assert report.overhead_percent == pytest.approx(3.6, abs=0.2)

    def test_neon_overhead_larger_than_mve(self):
        report = AreaModel().report()
        assert AreaModel.neon_overhead_percent() > report.overhead_percent

    def test_module_breakdown_sums(self):
        report = AreaModel().report()
        assert report.total_mm2 == pytest.approx(sum(report.modules_mm2.values()))
        assert report.module_overhead_percent("fsm") > report.module_overhead_percent("mshr")

    def test_area_scales_with_arrays(self):
        small = AreaModel(num_arrays=16).report()
        large = AreaModel(num_arrays=64).report()
        assert large.total_mm2 > small.total_mm2


class TestMachineConfig:
    def test_defaults_match_table4(self):
        config = default_config()
        assert config.frequency_ghz == 2.8
        assert config.simd_lanes == 8192
        assert config.num_control_blocks == 8
        assert config.hierarchy.l2.size_bytes == 512 * 1024

    def test_with_arrays(self):
        config = default_config().with_arrays(64)
        assert config.simd_lanes == 16384
        assert config.engine.num_arrays == 64

    def test_with_scheme(self):
        config = default_config().with_scheme("bit-parallel")
        assert config.scheme_name == "bit-parallel"
