"""Staged trace pipeline regression suite.

Guards the capture-once/replay-many contract end to end:

* the columnar codec round-trips traces exactly (including random-access
  bases, dimension masks, ``None`` immediates and scalar-block notes),
* capture with ``record_values=False`` (the timing path's default) emits
  the identical instruction stream -- and therefore bit-identical
  ``SimulationResult``s -- as a value-recording run,
* a cold multi-config sweep captures each distinct (kernel, kind, kwargs,
  simd_lanes) trace exactly once, locally and under a worker pool, and
  reuses stored captures across engines, and
* grouped capture+replay reproduces the legacy fused per-job path
  bit-for-bit across the job sets of every registered experiment (the
  checked-in goldens must never need regeneration for this refactor).
"""

import json

import pytest

from repro.compiler.pipeline import compile_trace
from repro.core.cache import ResultStore
from repro.core.simulator import simulate_kernel, simulate_trace
from repro.core.traces import TraceArtifact, TraceSpec, TraceStore
from repro.experiments.figure8 import figure8_sweep_spec
from repro.experiments.registry import all_experiments
from repro.experiments.sweep import (
    KernelJob,
    ParallelSweepEngine,
    SweepSpec,
    execute_job,
)
from repro.isa.instructions import ScalarBlock
from repro.isa.trace_io import decode_trace, encode_trace
from repro.sram.schemes import SCHEME_NAMES, get_scheme
from repro.workloads import get_kernel_class

#: spans 1D/2D/3D kernels, strided and random (pointer-table) access, the
#: RVV lowering and dimension-masked reductions
CODEC_SPECS = [
    TraceSpec("csum", "mve", 0.25),
    TraceSpec("csum", "rvv", 0.25),
    TraceSpec("gemm", "mve", 0.25),
    TraceSpec("spmm", "mve", 0.25),
    TraceSpec("dct", "mve", 0.125),
    TraceSpec("png_filter_up", "mve", 0.25),
]


def spec_id(spec: TraceSpec) -> str:
    return f"{spec.kernel}-{spec.kind}"


def legacy_fused(job: KernelJob):
    """The seed pipeline, verbatim: build the kernel, trace it with full
    value recording, compile and simulate in one fused step."""
    kernel = get_kernel_class(job.kernel)(scale=job.scale, **dict(job.kwargs))
    if job.kind == "rvv":
        trace = kernel.trace_rvv(simd_lanes=job.config.simd_lanes)
    else:
        trace = kernel.trace_mve(simd_lanes=job.config.simd_lanes)
    result, compiled = simulate_kernel(
        trace, config=job.config, scheme=get_scheme(job.scheme_name)
    )
    return result, compiled.spill_count


class TestColumnarCodec:
    @pytest.mark.parametrize("spec", CODEC_SPECS, ids=spec_id)
    def test_roundtrip_is_exact(self, spec):
        trace = spec.capture().trace
        payload = encode_trace(trace)
        json.dumps(payload)  # must survive the JSON-only HTTP cache tier
        assert decode_trace(payload) == trace

    def test_roundtrip_survives_compiled_traces(self):
        """Spill instructions (is_spill, compiler-injected vsetwidth) encode
        too, so compiled traces are also serializable."""
        compiled = compile_trace(TraceSpec("dct", "mve", 0.125).capture().trace).trace
        assert decode_trace(encode_trace(compiled)) == compiled

    def test_scalar_notes_and_immediates_survive(self):
        trace = TraceSpec("csum", "mve", 0.25).capture().trace
        trace = [ScalarBlock(count=5, loads=2, stores=1, note="tail loop")] + trace
        decoded = decode_trace(encode_trace(trace))
        assert decoded == trace
        assert decoded[0].note == "tail loop"

    def test_rejects_foreign_payloads(self):
        with pytest.raises(ValueError):
            decode_trace({"codec": "something-else", "entries": 0})

    def test_artifact_payload_roundtrip(self, tmp_path):
        """The TraceStore record round-trips through an actual ResultStore."""
        spec = TraceSpec("spmm", "mve", 0.25)
        artifact = spec.capture()
        store = TraceStore(ResultStore(tmp_path))
        store.save(artifact)
        loaded = store.load(spec)
        assert loaded is not None
        assert loaded.trace == artifact.trace
        assert loaded.stats().as_dict() == artifact.stats().as_dict()

    @pytest.mark.parametrize("corruption", ["not-base64", "truncated-npz", "bitflip"])
    def test_corrupt_stored_payload_is_a_miss(self, tmp_path, corruption):
        """Corruption anywhere in the column data -- bad base64, a truncated
        archive (zipfile.BadZipFile territory), flipped bytes -- is a miss,
        never an exception escaping the store."""
        spec = TraceSpec("csum", "mve", 0.25)
        result_store = ResultStore(tmp_path)
        store = TraceStore(result_store)
        store.save(spec.capture())
        raw = json.loads(result_store._path(spec.cache_key()).read_text())
        blob = raw["trace"]["npz_b64"]
        if corruption == "not-base64":
            raw["trace"]["npz_b64"] = "@@@not-base64@@@"
        elif corruption == "truncated-npz":
            raw["trace"]["npz_b64"] = blob[: len(blob) // 2]
        else:
            import base64

            data = bytearray(base64.b64decode(blob))
            data[len(data) // 2] ^= 0xFF
            raw["trace"]["npz_b64"] = base64.b64encode(bytes(data)).decode()
        result_store._path(spec.cache_key()).write_text(json.dumps(raw))
        assert store.load(spec) is None

    def test_corrupt_stored_payload_degrades_to_recapture(self, tmp_path):
        """The engine recaptures (and heals the store entry) when a cached
        trace payload is corrupt, instead of failing the sweep."""
        store = ResultStore(tmp_path)
        job = KernelJob(kernel="csum", scale=0.25)
        ParallelSweepEngine(jobs=1, store=store).run_one(job)
        trace_path = store._path(job.trace_spec().cache_key())
        raw = json.loads(trace_path.read_text())
        raw["trace"]["npz_b64"] = raw["trace"]["npz_b64"][:40]
        trace_path.write_text(json.dumps(raw))
        # Results stay warm; force a replay by clearing the result record.
        store._path(job.cache_key()).unlink()

        engine = ParallelSweepEngine(jobs=1, store=store)
        outcome = engine.run_one(job)
        assert engine.traces_captured == 1  # recaptured, not crashed
        assert engine.trace_store_hits == 0  # a corrupt record is not a hit
        result, spills = legacy_fused(job)
        assert outcome.result.to_dict() == result.to_dict()


class TestRecordValuesParity:
    """Satellite: the timing path defaults to record_values=False capture;
    values are only needed for ``validate()``."""

    CASES = [
        ("csum", "mve", 0.25),
        ("csum", "rvv", 0.25),
        ("gemm", "mve", 0.25),
        ("spmm", "mve", 0.25),
        ("dct", "mve", 0.125),
    ]

    @pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-{c[1]}")
    def test_traces_and_results_bit_identical(self, case):
        name, kind, scale = case
        recording = get_kernel_class(name)(scale=scale).capture(kind, record_values=True)
        captured = get_kernel_class(name)(scale=scale).capture(kind, record_values=False)
        assert captured == recording

        with_values, _ = simulate_kernel(recording)
        without_values, _ = simulate_trace(captured)
        assert without_values.to_dict() == with_values.to_dict()

    def test_capture_default_skips_memory_traffic(self):
        """record_values=False must not write kernel outputs (that is what
        distinguishes capture from validate)."""
        import numpy as np

        kernel = get_kernel_class("csum")(scale=0.25)
        kernel.capture("mve")
        captured_output = np.array(kernel.output(), copy=True)
        assert not np.array_equal(captured_output, kernel.reference())
        assert kernel.validate()  # validate still records values


class TestCaptureCounting:
    """Acceptance: a cold multi-config sweep captures each distinct trace
    exactly once, and warm sweeps capture nothing."""

    def test_cold_figure8_sweep_captures_each_trace_once(self, tmp_path):
        jobs = figure8_sweep_spec().jobs()
        engine = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path))
        engine.run_jobs(jobs)
        distinct_specs = {job.trace_spec() for job in jobs}
        assert set(engine.trace_captures) == distinct_specs
        assert all(count == 1 for count in engine.trace_captures.values())

        warm = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path))
        warm.run_jobs(jobs)
        assert warm.computed == 0
        assert warm.traces_captured == 0

    def test_multi_config_group_shares_one_capture(self, tmp_path):
        """One kernel swept over every compute scheme: four timing runs,
        one capture, results identical to the fused path."""
        jobs = SweepSpec(
            name="schemes", kernels=[("gemm", {"scale": 0.25})], schemes=SCHEME_NAMES
        ).jobs()
        engine = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path))
        outcomes = engine.run_jobs(jobs)
        assert engine.computed == len(SCHEME_NAMES)
        assert engine.traces_captured == 1
        for job, outcome in outcomes.items():
            result, spills = legacy_fused(job)
            assert outcome.result.to_dict() == result.to_dict()
            assert outcome.spills == spills

    def test_parallel_pool_captures_once_per_group(self, tmp_path):
        jobs = SweepSpec(
            name="pooled",
            kernels=[("csum", {"scale": 0.25}), ("memcpy", {"scale": 0.25})],
            schemes=("bit-serial", "bit-parallel"),
        ).jobs()
        engine = ParallelSweepEngine(jobs=4, store=ResultStore(tmp_path))
        outcomes = engine.run_jobs(jobs)
        assert len(outcomes) == 4
        assert engine.traces_captured == 2  # one capture per kernel group
        assert all(count == 1 for count in engine.trace_captures.values())
        serial = ParallelSweepEngine(jobs=1).run_jobs(jobs)
        for job in jobs:
            assert outcomes[job].result.to_dict() == serial[job].result.to_dict()

    def test_stored_capture_answers_other_engines(self, tmp_path):
        """A trace captured for one scheme answers a different scheme's cold
        job from the store: no second functional-machine run."""
        store = ResultStore(tmp_path)
        first = ParallelSweepEngine(jobs=1, store=store)
        first.run_one(KernelJob(kernel="gemm", scale=0.25))
        assert first.traces_captured == 1

        second = ParallelSweepEngine(jobs=1, store=store)
        outcome = second.run_one(
            KernelJob(kernel="gemm", scale=0.25, scheme_name="bit-parallel")
        )
        assert second.traces_captured == 0
        assert second.trace_store_hits == 1
        result, spills = legacy_fused(
            KernelJob(kernel="gemm", scale=0.25, scheme_name="bit-parallel")
        )
        assert outcome.result.to_dict() == result.to_dict()
        assert outcome.spills == spills

    def test_resolved_groups_split_per_partition_for_the_pool(self, tmp_path, monkeypatch):
        """A single-kernel multi-config sweep with a warm trace store must
        not serialize on one worker: resolved groups are split into
        batched-replay partitions (per job with ``REPRO_BATCHED_REPLAY=0``),
        while a group that still needs its capture stays whole."""
        store = ResultStore(tmp_path)
        jobs = SweepSpec(
            name="split", kernels=[("csum", {"scale": 0.25})], schemes=SCHEME_NAMES
        ).jobs()
        warmer = ParallelSweepEngine(jobs=1, store=store)
        warmer.run_one(jobs[0])  # capture the trace, warm one result

        engine = ParallelSweepEngine(jobs=4, store=store)
        tasks = engine._split_resolved_groups(engine._resolve_groups(jobs[1:]))
        # Trace already stored: all remaining jobs share one register-file
        # geometry, so they form a single batched-replay task with the
        # payload decoded once in the parent.
        assert [len(group) for _, group, _, _ in tasks] == [len(jobs) - 1]
        assert all(trace is not None and payload is None for _, _, trace, payload in tasks)

        # The escape hatch restores the historical per-job split.
        monkeypatch.setenv("REPRO_BATCHED_REPLAY", "0")
        legacy = ParallelSweepEngine(jobs=4, store=store)
        legacy_tasks = legacy._split_resolved_groups(legacy._resolve_groups(jobs[1:]))
        assert [len(group) for _, group, _, _ in legacy_tasks] == [1] * (len(jobs) - 1)
        monkeypatch.delenv("REPRO_BATCHED_REPLAY")

        cold = ParallelSweepEngine(jobs=4, store=ResultStore(tmp_path / "cold"))
        cold_tasks = cold._split_resolved_groups(cold._resolve_groups(jobs))
        (task,) = cold_tasks  # needs capture: stays one whole group
        assert len(task[1]) == len(jobs)

        outcomes = engine.run_jobs(jobs)
        assert engine.traces_captured == 0
        assert engine.batched_replays == 1
        serial = ParallelSweepEngine(jobs=1).run_jobs(jobs)
        for job in jobs:
            assert outcomes[job].result.to_dict() == serial[job].result.to_dict()

    def test_starved_pool_captures_cold_group_in_parent(self, tmp_path):
        """A cold single-kernel multi-config sweep must not pin the whole
        batch to one worker: the parent runs the (cheap) capture itself --
        still exactly once -- and the replays fan out per job."""
        jobs = SweepSpec(
            name="starved", kernels=[("csum", {"scale": 0.25})], schemes=SCHEME_NAMES
        ).jobs()
        engine = ParallelSweepEngine(jobs=4, store=ResultStore(tmp_path))
        tasks = engine._split_resolved_groups(engine._resolve_groups(jobs))
        assert len(tasks) == 1  # capture-needed group: whole, pool starved
        resolved = engine._split_resolved_groups(engine._capture_starved_groups(tasks))
        assert engine.traces_captured == 1
        # After capture the replays fan out per batched-replay partition;
        # every scheme shares one register-file geometry here, so the group
        # stays one batched task (one per job with REPRO_BATCHED_REPLAY=0).
        assert len(resolved) == 1
        assert len(resolved[0][1]) == len(jobs)

        outcomes = ParallelSweepEngine(jobs=4, store=ResultStore(tmp_path / "e2e")).run_jobs(jobs)
        serial = ParallelSweepEngine(jobs=1).run_jobs(jobs)
        for job in jobs:
            assert outcomes[job].result.to_dict() == serial[job].result.to_dict()

    def test_pooled_engine_without_store_memoizes_captures(self):
        """Regression: with --no-cache and a worker pool there is no store
        to answer later trace lookups, so the parent must memoize the
        captured traces -- a follow-up batch or captured_trace() call may
        never re-run the functional machine."""
        jobs = SweepSpec(
            name="nostore",
            kernels=[("csum", {"scale": 0.25}), ("memcpy", {"scale": 0.25})],
        ).jobs()
        engine = ParallelSweepEngine(jobs=4, store=None)
        engine.run_jobs(jobs)
        assert engine.traces_captured == 2
        for job in jobs:
            engine.captured_trace(job.trace_spec())
        assert engine.traces_captured == 2  # answered from the trace memo

    def test_captured_trace_api_shares_engine_cache(self, tmp_path):
        """figure12a's path: captured_trace answers from the engine memo /
        store and never re-runs the functional machine for a traced job."""
        engine = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path))
        job = KernelJob(kernel="gemm", scale=0.25)
        engine.run_one(job)
        assert engine.traces_captured == 1
        trace = engine.captured_trace(job.trace_spec())
        assert engine.traces_captured == 1  # memo/store hit, no re-capture
        assert trace == TraceSpec("gemm", "mve", 0.25).capture().trace


class TestStagedParityAcrossExperiments:
    """Satellite: grouped capture+replay reproduces the legacy fused path
    bit-for-bit across the job sets of all registered experiments."""

    @pytest.fixture(scope="class")
    def distinct_jobs(self):
        jobs = []
        experiments = all_experiments()
        assert len(experiments) == 11
        for experiment in experiments:
            jobs.extend(experiment.jobs())
        return list(dict.fromkeys(jobs))

    def test_staged_engine_matches_fused_path_bit_for_bit(
        self, distinct_jobs, tmp_path_factory
    ):
        store = ResultStore(tmp_path_factory.mktemp("staged-parity"))
        engine = ParallelSweepEngine(jobs=1, store=store)
        staged = engine.run_jobs(distinct_jobs)

        # Every distinct trace captured exactly once across all experiments.
        assert set(engine.trace_captures) == {j.trace_spec() for j in distinct_jobs}
        assert all(count == 1 for count in engine.trace_captures.values())
        assert engine.computed == len(distinct_jobs)

        for job in distinct_jobs:
            result, spills = legacy_fused(job)
            assert staged[job].result.to_dict() == result.to_dict(), job.describe()
            assert staged[job].spills == spills, job.describe()
