"""Design-space explorer tests: spaces, frontiers, resume, fleet, CLI.

The contract under test: an adaptive search finds the *exact* Pareto
frontier of the exhaustive grid while evaluating (and above all
simulating) fewer configurations; the frontier is invariant to the order
results arrive in (hypothesis); a search SIGKILLed mid-round resumes to
the identical frontier with zero re-simulation; exploration rounds drain
through the fleet coordinator with zero local simulation; and the
streaming assemble/stream_jobs path keeps engine memory flat.

The frontier export schema is pinned by ``tests/golden/
explore_frontier_schema.json``; regenerate after an intentional change
with::

    PYTHONPATH=src python tests/test_explore.py --update-schema
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import warnings
from dataclasses import dataclass

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import explore_export_payload, main as cli_main, schema_outline
from repro.core.area import AreaReport
from repro.core.cache import ResultStore
from repro.core.cache_service import CacheServer
from repro.core.coordinator import CoordinatorClient, JobQueue
from repro.core.energy import EnergyBreakdown
from repro.experiments import registry
from repro.experiments.registry import ExperimentOptions, build_runner, run_experiment
from repro.experiments.sweep import ParallelSweepEngine, SweepSpec
from repro.explore import (
    DEFAULT_OBJECTIVES,
    Axis,
    Explorer,
    FrontierPoint,
    ParetoFrontier,
    PointMetrics,
    SearchSpace,
    default_space,
    exhaustive_frontier,
    get_strategy,
)
from repro.worker import resolve_partition_jobs, run_worker

settings.register_profile("repro", deadline=None, max_examples=50)
settings.load_profile("repro")

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
EXPLORE_SCHEMA_GOLDEN = os.path.join(GOLDEN_DIR, "explore_frontier_schema.json")

SEED = 7
SCALE = 0.25


def small_space(scale: float = SCALE) -> SearchSpace:
    """16 points: 2 schemes x 4 engine sizes x 2 L2 compute-way settings."""
    return SearchSpace(
        kernel="csum",
        scale=scale,
        axes=(
            Axis("scheme", ("bit-serial", "bit-parallel")),
            Axis("num_arrays", (8, 16, 32, 64)),
            Axis("l2_compute_ways", (2, 4)),
        ),
    )


def tiny_space(scale: float = SCALE) -> SearchSpace:
    """8 points, cheap enough for the fleet round trip."""
    return SearchSpace(
        kernel="csum",
        scale=scale,
        axes=(
            Axis("scheme", ("bit-serial", "bit-parallel")),
            Axis("num_arrays", (16, 32)),
            Axis("l2_compute_ways", (2, 4)),
        ),
    )


def frontier_dicts(members) -> list:
    return [member.to_dict() for member in members]


# ---------------------------------------------------------------------- #
#  SearchSpace: addressing, validation, compilation to the sweep machinery
# ---------------------------------------------------------------------- #


class TestSearchSpace:
    def test_round_trips_through_its_wire_form(self):
        space = small_space()
        assert SearchSpace.from_dict(space.to_dict()) == space
        assert SearchSpace.from_dict(json.loads(json.dumps(space.to_dict()))) == space

    def test_point_addressing_is_bijective(self):
        space = small_space()
        seen = set()
        for point in range(space.size):
            indices = space.point_indices(point)
            assert space.point_from_indices(indices) == point
            seen.add(indices)
        assert len(seen) == space.size
        values = space.point_values(0)
        assert set(values) == {"scheme", "num_arrays", "l2_compute_ways"}
        with pytest.raises(IndexError):
            space.point_indices(space.size)

    def test_validation_rejects_bad_axes_and_spaces(self):
        with pytest.raises(ValueError, match="unknown axis"):
            Axis("warp_speed", (1, 2))
        with pytest.raises(ValueError, match="no values"):
            Axis("num_arrays", ())
        with pytest.raises(ValueError, match="repeats"):
            Axis("num_arrays", (8, 8))
        with pytest.raises(ValueError, match="unknown scheme"):
            Axis("scheme", ("bit-sideways",))
        with pytest.raises(ValueError, match="unknown DRAM preset"):
            Axis("dram", ("ddr2",))
        with pytest.raises(ValueError, match="unknown kernel"):
            SearchSpace(kernel="nope", axes=(Axis("num_arrays", (8,)),))
        with pytest.raises(ValueError, match="unknown trace kind"):
            SearchSpace(kernel="csum", kind="avx", axes=(Axis("num_arrays", (8,)),))
        with pytest.raises(ValueError, match="at least one axis"):
            SearchSpace(kernel="csum", axes=())
        with pytest.raises(ValueError, match="duplicate axes"):
            SearchSpace(
                kernel="csum",
                axes=(Axis("num_arrays", (8,)), Axis("num_arrays", (16,))),
            )

    def test_compiles_to_sweep_specs_covering_exactly_the_point_set(self):
        """The tentpole's "compiles down to the existing machinery" claim:
        the union of the compiled SweepSpecs' job sets is exactly the point
        set, so explorer jobs share cache keys with hand-written sweeps."""
        space = small_space()
        point_jobs = {space.job(point) for point in range(space.size)}
        spec_jobs = {job for spec in space.sweep_specs() for job in spec.jobs()}
        assert spec_jobs == point_jobs
        assert len(point_jobs) == space.size

    def test_geometry_axes_reach_the_trace_spec(self):
        """array_cols changes bit-lines and therefore simd_lanes: the
        capture stage must see it, not just the timing model."""
        space = SearchSpace(
            kernel="csum",
            scale=SCALE,
            axes=(Axis("array_cols", (128, 256)),),
        )
        narrow, wide = space.job(0), space.job(1)
        assert narrow.trace_spec() != wide.trace_spec()
        assert narrow.config.simd_lanes != wide.config.simd_lanes

    def test_dram_axis_applies_named_presets(self):
        space = SearchSpace(
            kernel="csum", scale=SCALE, axes=(Axis("dram", ("lpddr4x", "lpddr5")),)
        )
        base, fast = (space.config_for(point)[0] for point in (0, 1))
        assert fast.hierarchy.dram.t_cas < base.hierarchy.dram.t_cas
        # Wire form stays primitive: the preset name, never a struct.
        assert space.to_dict()["axes"][0]["values"] == ["lpddr4x", "lpddr5"]

    def test_key_embeds_space_identity(self):
        space, other = small_space(), tiny_space()
        assert len(space.key()) == 64
        assert space.key() != other.key()
        assert "csum" in space.describe() and "16 points" in space.describe()


# ---------------------------------------------------------------------- #
#  ParetoFrontier: dominance, ties, idempotence, order invariance
# ---------------------------------------------------------------------- #


def member(point: int, cycles: float, area: float, energy: float) -> FrontierPoint:
    metrics = PointMetrics(
        cycles=float(cycles),
        time_us=float(cycles) / 10.0,
        energy=EnergyBreakdown(
            compute_nj=float(energy), data_access_nj=0.0, cpu_nj=0.0, static_nj=0.0
        ),
        area=AreaReport(modules_mm2={"m": float(area)}),
    )
    return FrontierPoint(
        point=point, values={"p": point}, cache_key="ab" * 32, metrics=metrics
    )


class TestParetoFrontier:
    def test_dominated_arrivals_are_rejected_and_prune_on_insert(self):
        frontier = ParetoFrontier()
        assert frontier.update(member(0, 100, 1.0, 50))
        assert not frontier.update(member(1, 110, 1.0, 50))  # dominated
        assert frontier.update(member(2, 90, 0.5, 40))  # dominates point 0
        assert [m.point for m in frontier.points] == [2]

    def test_equal_vectors_are_both_kept(self):
        frontier = ParetoFrontier()
        assert frontier.update(member(0, 100, 1.0, 50))
        assert frontier.update(member(1, 100, 1.0, 50))
        assert [m.point for m in frontier.points] == [0, 1]

    def test_update_is_idempotent_per_point_id(self):
        frontier = ParetoFrontier()
        assert frontier.update(member(3, 100, 1.0, 50))
        assert not frontier.update(member(3, 100, 1.0, 50))
        assert len(frontier) == 1

    def test_incomparable_points_coexist(self):
        frontier = ParetoFrontier(objectives=("cycles", "area"))
        frontier.update(member(0, 100, 2.0, 0))
        frontier.update(member(1, 200, 1.0, 0))
        assert len(frontier) == 2

    def test_unknown_objectives_are_rejected(self):
        with pytest.raises(ValueError, match="unknown objectives"):
            ParetoFrontier(objectives=("cycles", "beauty"))
        with pytest.raises(ValueError, match="at least one"):
            ParetoFrontier(objectives=())

    @given(
        st.lists(
            st.tuples(
                st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)
            ),
            min_size=1,
            max_size=16,
        ),
        st.randoms(use_true_random=False),
    )
    def test_frontier_is_invariant_to_arrival_order(self, vectors, rng):
        members = [
            member(index, cycles, area, energy)
            for index, (cycles, area, energy) in enumerate(vectors)
        ]
        ordered = ParetoFrontier()
        for m in members:
            ordered.update(m)
        shuffled = list(members)
        rng.shuffle(shuffled)
        permuted = ParetoFrontier()
        for m in shuffled:
            permuted.update(m)
        assert frontier_dicts(ordered.points) == frontier_dicts(permuted.points)


class TestStrategies:
    def test_unknown_strategy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("simulated-annealing")

    def test_frontier_seed_grid_covers_categories_and_endpoints(self):
        import random

        space = small_space()
        strategy = get_strategy("frontier")
        from repro.explore.state import SearchState

        state = SearchState(
            space=space.to_dict(), seed=0, strategy="frontier", objectives=DEFAULT_OBJECTIVES
        )
        seeds = strategy.propose(space, state, random.Random(0), batch=99)
        values = [space.point_values(point) for point in seeds]
        assert {v["scheme"] for v in values} == {"bit-serial", "bit-parallel"}
        assert {v["num_arrays"] for v in values} == {8, 64}  # endpoints only
        assert {v["l2_compute_ways"] for v in values} == {2, 4}


# ---------------------------------------------------------------------- #
#  Acceptance: exact frontier, fewer evaluations; resume semantics
# ---------------------------------------------------------------------- #


class TestAdaptiveSearch:
    def test_finds_exact_frontier_evaluating_fewer_points(self, tmp_path):
        space = small_space()
        store = ResultStore(tmp_path / "cache")
        summary = Explorer(
            space, store=store, jobs=1, strategy="frontier", seed=SEED
        ).run(budget=space.size, max_rounds=64)
        assert summary.state.done
        assert len(summary.state.evaluated) < space.size  # measurably fewer
        # Ground truth shares the store, so it only simulates the skipped
        # interior points.
        exact = exhaustive_frontier(space, store=store, seed=SEED)
        assert frontier_dicts(summary.state.frontier) == frontier_dicts(exact)

    def test_resumed_search_is_a_zero_simulation_no_op(self, tmp_path):
        space = small_space()
        store = ResultStore(tmp_path / "cache")
        first = Explorer(space, store=store, jobs=1, seed=SEED).run(budget=space.size)
        again = Explorer(space, store=store, jobs=1, seed=SEED).run(budget=space.size)
        assert again.simulated_this_run == 0
        assert again.state.done
        assert frontier_dicts(again.state.frontier) == frontier_dicts(
            first.state.frontier
        )

    def test_resume_with_a_bigger_budget_continues_the_checkpoint(self, tmp_path):
        space = small_space()
        store = ResultStore(tmp_path / "cache")
        partial = Explorer(space, store=store, jobs=1, seed=SEED).run(budget=4)
        assert not partial.state.done
        evaluated_then = len(partial.state.evaluated)
        assert 0 < evaluated_then <= 4
        # Budget is not part of the state key: the bigger run resumes and
        # only simulates the points the partial run never touched.
        resumed = Explorer(space, store=store, jobs=1, seed=SEED).run(budget=space.size)
        assert resumed.state.done
        assert resumed.simulated_this_run == len(resumed.state.evaluated) - evaluated_then

    def test_random_strategy_stays_deterministic_per_seed(self, tmp_path):
        space = small_space()
        a = Explorer(
            space, store=ResultStore(tmp_path / "a"), jobs=1,
            strategy="random", seed=3, batch=5,
        ).run(budget=10)
        b = Explorer(
            space, store=ResultStore(tmp_path / "b"), jobs=1,
            strategy="random", seed=3, batch=5,
        ).run(budget=10)
        assert sorted(a.state.evaluated) == sorted(b.state.evaluated)
        assert frontier_dicts(a.state.frontier) == frontier_dicts(b.state.frontier)


KILLED_CHILD = textwrap.dedent(
    """
    import json, os, signal, sys

    from repro.core.cache import ResultStore
    from repro.explore import Explorer, SearchSpace

    cache_dir, space_json, seed = sys.argv[1], sys.argv[2], int(sys.argv[3])
    space = SearchSpace.from_dict(json.loads(space_json))
    progress = os.path.join(cache_dir, "progress.log")

    def killer(job, outcome, completed, total):
        with open(progress, "a") as handle:
            handle.write(job.cache_key() + "\\n")
        if sum(1 for _ in open(progress)) == 3:
            os.kill(os.getpid(), signal.SIGKILL)

    Explorer(space, store=ResultStore(cache_dir), jobs=1, seed=seed).run(
        budget=space.size, on_result=killer
    )
    """
)


class TestKillAndResume:
    def test_sigkill_mid_round_resumes_with_zero_resimulation(self, tmp_path):
        """The child is SIGKILLed inside the third on_result callback --
        after those results hit the store but before any checkpoint is
        written.  The resumed search replays the same seeded proposals,
        answers the three completed points from the store, and converges
        to the reference frontier having simulated exactly the rest."""
        space = small_space()
        reference = Explorer(
            space, store=ResultStore(tmp_path / "reference"), jobs=1, seed=SEED
        ).run(budget=space.size)
        total_simulated = reference.simulated_this_run
        assert total_simulated > 3

        victim_dir = tmp_path / "victim"
        victim_dir.mkdir()
        script = tmp_path / "child.py"
        script.write_text(KILLED_CHILD)
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env.pop("REPRO_REMOTE_CACHE", None)
        completed = subprocess.run(
            [
                sys.executable,
                str(script),
                str(victim_dir),
                json.dumps(space.to_dict()),
                str(SEED),
            ],
            env=env,
            timeout=120,
        )
        assert completed.returncode == -signal.SIGKILL
        survived = len((victim_dir / "progress.log").read_text().splitlines())
        assert survived == 3

        resumed = Explorer(
            space, store=ResultStore(victim_dir), jobs=1, seed=SEED
        ).run(budget=space.size)
        assert resumed.state.done
        # Zero re-simulation: the three pre-kill results are recalled, so
        # the resumed run simulates exactly the remainder.
        assert resumed.simulated_this_run == total_simulated - survived
        assert frontier_dicts(resumed.state.frontier) == frontier_dicts(
            reference.state.frontier
        )


# ---------------------------------------------------------------------- #
#  Streaming: stream_jobs memory ceiling and the registry assemble seam
# ---------------------------------------------------------------------- #

STREAM_NAME = "explore-stream-mini"


@dataclass
class StreamMiniResult:
    cycles: dict

    def to_dict(self) -> dict:
        return {"cycles": dict(self.cycles)}

    @classmethod
    def from_dict(cls, data: dict) -> "StreamMiniResult":
        return cls(cycles=dict(data["cycles"]))


def _stream_specs(options):
    return (
        SweepSpec(
            name=STREAM_NAME,
            kernels=[("csum", {"scale": SCALE}), ("memcpy", {"scale": SCALE})],
            schemes=("bit-serial", "bit-parallel"),
        ),
    )


def _stream_assemble_batch(runner, options):
    cycles = {}
    for spec in _stream_specs(options):
        for job in spec.jobs():
            outcome = runner.engine.run_one(job)
            cycles[f"{job.kernel}/{job.scheme_name}"] = outcome.result.total_cycles
    return StreamMiniResult(cycles=cycles)


class _StreamFolder:
    def __init__(self):
        self.cycles = {}

    def on_result(self, job, outcome, completed, total):
        self.cycles[f"{job.kernel}/{job.scheme_name}"] = outcome.result.total_cycles

    def result(self):
        return StreamMiniResult(cycles=self.cycles)


@pytest.fixture
def stream_experiment():
    experiment = registry.register_experiment(
        STREAM_NAME,
        "streaming assemble test experiment",
        StreamMiniResult,
        _stream_assemble_batch,
        _stream_specs,
        stream_assemble=lambda runner, options: _StreamFolder(),
    )
    yield experiment
    registry._REGISTRY.pop(STREAM_NAME, None)


class TestStreaming:
    def test_stream_jobs_never_grows_the_memo(self, tmp_path):
        """The memory ceiling the 10^5-job claim rests on: streaming keeps
        the engine's per-job memo empty (results live only in the store),
        where the collecting path memoizes every outcome."""
        jobs = _stream_specs(None)[0].jobs()
        streaming = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path / "s"))
        seen = []
        processed = streaming.stream_jobs(
            jobs, on_result=lambda job, outcome, done, total: seen.append(job)
        )
        assert processed == len(jobs) == len(seen)
        assert len(streaming._memo) == 0
        assert streaming.computed == len(jobs)

        collecting = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path / "c"))
        collecting.run_jobs(jobs)
        assert len(collecting._memo) == len(jobs)

    def test_stream_results_persist_before_each_callback(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        engine = ParallelSweepEngine(jobs=1, store=store)

        def assert_persisted(job, outcome, completed, total):
            assert store.load(job.cache_key()) is not None

        engine.stream_jobs(_stream_specs(None)[0].jobs(), on_result=assert_persisted)

    def test_registry_streams_through_the_assemble_seam(
        self, stream_experiment, tmp_path
    ):
        runner = build_runner(jobs=1, store=ResultStore(tmp_path / "cache"))
        result = run_experiment(STREAM_NAME, runner=runner, options=ExperimentOptions())
        # The streamed fold matches the batch assembly bit for bit...
        reference = _stream_assemble_batch(
            build_runner(jobs=1, store=ResultStore(tmp_path / "ref")),
            ExperimentOptions(),
        )
        assert result.to_dict() == reference.to_dict()
        # ...without materializing a single outcome in the engine memo.
        assert len(runner.engine._memo) == 0
        # The assembled result is cached like any other experiment's.
        warm = build_runner(jobs=1, store=ResultStore(tmp_path / "cache"))
        again = run_experiment(STREAM_NAME, runner=warm, options=ExperimentOptions())
        assert again.to_dict() == result.to_dict()
        assert warm.engine.computed == 0


# ---------------------------------------------------------------------- #
#  Fleet: exploration rounds as coordinator partitions
# ---------------------------------------------------------------------- #


class TestFleetExplore:
    def test_resolve_explore_partition_validates_like_experiments(self):
        space = tiny_space()
        queue = JobQueue(lease_ttl_s=60.0)
        points = list(range(space.size))
        summary = queue.enqueue_explore(space.to_dict(), points)
        assert summary["experiment"] == "explore"
        assert summary["jobs"] == space.size
        assert summary["queued"] == summary["partitions"] >= 1

        partition, _ = queue.lease("w1")
        assert partition["experiment"] == "explore"
        jobs = resolve_partition_jobs(partition)
        assert jobs is not None
        assert [job.cache_key() for job in jobs] == partition["keys"]
        assert [space.job(p).cache_key() for p in partition["points"]] == partition[
            "keys"
        ]

        # Version skew / tampering nacks instead of simulating wrong work.
        assert resolve_partition_jobs({**partition, "keys": ["00" * 32]}) is None
        assert (
            resolve_partition_jobs({**partition, "points": partition["points"][:-1]})
            is None
        )
        assert resolve_partition_jobs({**partition, "points": "0,1"}) is None
        bad_space = {**partition, "space": {"kernel": "nope", "axes": []}}
        assert resolve_partition_jobs(bad_space) is None

    def test_enqueue_explore_is_idempotent_while_queued(self):
        space = tiny_space()
        queue = JobQueue(lease_ttl_s=60.0)
        first = queue.enqueue_explore(space.to_dict(), [0, 1])
        again = queue.enqueue_explore(space.to_dict(), [0, 1])
        assert again["queued"] == 0
        assert again["already_queued"] == first["queued"]

    def test_fleet_drains_exploration_and_searcher_simulates_nothing(self, tmp_path):
        space = tiny_space()
        srv = CacheServer(("127.0.0.1", 0), root=tmp_path / "server")
        srv.start_in_background()
        try:
            client = CoordinatorClient(srv.url, worker_id="enqueuer")
            summary = client.enqueue_explore(
                space.to_dict(), list(range(space.size))
            )
            assert summary["jobs"] == space.size

            report = run_worker(
                srv.url,
                cache_dir=str(tmp_path / "worker"),
                worker_id="worker",
                drain=True,
                poll_s=0.05,
            )
            assert report.mismatched == 0
            assert report.acked == summary["partitions"]
            assert len(report.simulated_keys()) == space.size

            # The searcher rides the fleet's results: every point answered
            # from the shared tier, zero local simulation.
            searcher_store = ResultStore(tmp_path / "searcher", remote=srv.url)
            explorer = Explorer(
                space,
                store=searcher_store,
                jobs=1,
                strategy="exhaustive",
                seed=SEED,
                coordinator=CoordinatorClient(srv.url, worker_id="searcher"),
            )
            result = explorer.run(budget=space.size)
            assert len(result.state.evaluated) == space.size
            assert explorer.engine.computed == 0
            assert result.simulated_this_run == 0

            local = Explorer(
                space,
                store=ResultStore(tmp_path / "local"),
                jobs=1,
                strategy="exhaustive",
                seed=SEED,
            ).run(budget=space.size)
            assert frontier_dicts(result.state.frontier) == frontier_dicts(
                local.state.frontier
            )
        finally:
            srv.shutdown()
            srv.server_close()

    def test_fleet_drain_timeout_warns_once_and_counts(self, tmp_path):
        """Regression: the drain loop used to fall out of its deadline
        silently -- the caller simulated everything locally with no
        indication the fleet never answered.  Now each timed-out round
        increments ``fleet_timeouts`` and the first one warns (the PR 4
        one-warning contract)."""
        space = tiny_space()
        srv = CacheServer(("127.0.0.1", 0), root=tmp_path / "server")
        srv.start_in_background()
        try:
            explorer = Explorer(
                space,
                store=ResultStore(tmp_path / "searcher", remote=srv.url),
                jobs=1,
                # "random" honors the batch cap ("exhaustive" proposes the
                # whole grid in one round): 4 of 8 points per round -> two
                # rounds -> two drain timeouts.
                strategy="random",
                seed=SEED,
                batch=space.size // 2,
                coordinator=CoordinatorClient(srv.url, worker_id="searcher"),
                fleet_poll_s=0.02,
                fleet_timeout_s=0.1,
            )
            # Partitions are enqueued but no worker ever leases them, so
            # every round's drain poll must expire.
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                summary = explorer.run(budget=space.size)
            timeout_warnings = [
                w for w in caught if "fleet drain" in str(w.message)
            ]
            assert len(timeout_warnings) == 1  # once per Explorer, not per round
            assert summary.fleet_timeouts == 2
            assert explorer.fleet_timeouts == 2
            assert "2 fleet timeouts" in summary.describe()
            # The fallback still finishes the search locally.
            assert len(summary.state.evaluated) == space.size
            assert summary.simulated_this_run == space.size
        finally:
            srv.shutdown()
            srv.server_close()

    def test_fleet_summary_reports_zero_timeouts_on_healthy_drain(self, tmp_path):
        space = tiny_space()
        store = ResultStore(tmp_path / "cache")
        summary = Explorer(space, store=store, jobs=1, seed=SEED).run(budget=space.size)
        assert summary.fleet_timeouts == 0
        assert "fleet timeouts" not in summary.describe()


# ---------------------------------------------------------------------- #
#  Serializable-result surface: metrics round trips and export rows
# ---------------------------------------------------------------------- #


class TestMetricsSerialization:
    def test_area_report_round_trips_ignoring_derived_fields(self):
        report = AreaReport(modules_mm2={"tmu": 0.01, "fsm": 0.02})
        data = json.loads(json.dumps(report.to_dict()))
        assert data["total_mm2"] == pytest.approx(report.total_mm2)
        assert data["overhead_percent"] == pytest.approx(report.overhead_percent)
        restored = AreaReport.from_dict(data)
        assert restored == report

    def test_frontier_point_round_trips_through_json(self):
        original = member(5, 120, 0.8, 33)
        restored = FrontierPoint.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert restored == original
        assert restored.metrics.area.total_mm2 == pytest.approx(0.8)
        assert restored.metrics.energy.total_nj == pytest.approx(33.0)

    def test_export_payload_carries_area_and_energy_per_frontier_point(self, tmp_path):
        space = tiny_space()
        store = ResultStore(tmp_path / "cache")
        explorer = Explorer(space, store=store, jobs=1, seed=SEED)
        summary = explorer.run(budget=space.size)
        payload = explore_export_payload(space, summary.state)
        assert payload["explore"]["space_size"] == space.size
        assert payload["explore"]["evaluated"] == len(summary.state.evaluated)
        (first, *_rest) = payload["frontier"]
        assert set(first["metrics"]["area"]) >= {"modules_mm2", "total_mm2"}
        assert "compute_nj" in first["metrics"]["energy"]

        from repro.cli import _export_rows

        rows = _export_rows(payload)
        assert len(rows) == len(payload["frontier"])
        assert "metrics.area.total_mm2" in rows[0]
        assert "metrics.cycles" in rows[0]


# ---------------------------------------------------------------------- #
#  CLI: run/status/frontier/export, resume summary, schema golden
# ---------------------------------------------------------------------- #

CLI_AXES = [
    "--axis", "scheme=bit-serial,bit-parallel",
    "--axis", "num_arrays=16,32",
    "--axis", "l2_compute_ways=2,4",
]


def explore_argv(cache_dir, action, *extra):
    return [
        "--cache-dir", str(cache_dir), "explore", action, "csum",
        "--scale", str(SCALE), "--seed", str(SEED), "--jobs", "1",
        *CLI_AXES, *extra,
    ]


class TestExploreCLI:
    def test_run_reports_and_resume_simulates_nothing(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert cli_main(explore_argv(cache_dir, "run", "--budget", "8")) == 0
        out = capsys.readouterr().out
        assert "frontier" in out and "simulated this run" in out

        assert cli_main(explore_argv(cache_dir, "run", "--budget", "8")) == 0
        captured = capsys.readouterr()
        assert "0 simulated this run" in captured.out

    def test_status_frontier_and_export_actions(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert cli_main(
            explore_argv(cache_dir, "run", "--budget", "8", "--no-progress")
        ) == 0
        capsys.readouterr()

        assert cli_main(explore_argv(cache_dir, "status")) == 0
        out = capsys.readouterr().out
        assert "strategy frontier, seed 7" in out
        assert "round" in out and "proposed" in out

        assert cli_main(explore_argv(cache_dir, "frontier")) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "num_arrays" in out and "area_mm2" in out

        out_path = tmp_path / "frontier.json"
        assert cli_main(
            explore_argv(cache_dir, "export", "--out", str(out_path))
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == 1
        assert payload["explore"]["kernel"] == "csum"
        assert payload["space"]["axes"][0]["name"] == "scheme"
        assert payload["frontier"]

    def test_csv_export_rows_are_frontier_points(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert cli_main(
            explore_argv(
                cache_dir, "run", "--budget", "8", "--no-progress",
                "--export", "csv",
            )
        ) == 0
        import csv as csv_module

        rows = list(csv_module.DictReader(capsys.readouterr().out.splitlines()))
        assert rows
        assert all(float(row["metrics.cycles"]) > 0 for row in rows)
        assert "metrics.area.total_mm2" in rows[0]

    def test_inspection_without_state_or_bad_flags_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no saved search"):
            cli_main(explore_argv(tmp_path / "empty", "status"))
        with pytest.raises(SystemExit, match="bad --axis"):
            cli_main(
                ["--cache-dir", str(tmp_path), "explore", "run", "csum",
                 "--axis", "num_arrays"]
            )
        with pytest.raises(SystemExit, match="unknown axis"):
            cli_main(
                ["--cache-dir", str(tmp_path), "explore", "run", "csum",
                 "--axis", "warp=1,2"]
            )
        with pytest.raises(SystemExit, match="unknown objectives"):
            cli_main(
                explore_argv(tmp_path, "run", "--objectives", "cycles,beauty")
            )

    def test_export_schema_matches_golden(self, tmp_path):
        """The frontier export schema is pinned alongside the experiment
        goldens; the outline is value-free, so the small axes here pin the
        same shape the CI default-space smoke exports."""
        cache_dir = tmp_path / "cache"
        out_path = tmp_path / "frontier.json"
        assert cli_main(
            explore_argv(
                cache_dir, "run", "--budget", "8", "--no-progress",
                "--export", "json", "--out", str(out_path),
            )
        ) == 0
        payload = json.loads(out_path.read_text())
        with open(EXPLORE_SCHEMA_GOLDEN) as handle:
            golden = json.load(handle)
        assert _axis_free_outline(schema_outline(payload)) == golden


def _axis_free_outline(outline):
    """The export outline with per-space axis names normalized away: the
    ``values`` dict of a frontier point keys on the searched axes, which
    are configuration, not schema."""
    if isinstance(outline, dict):
        return {
            key: ("axis-values" if key == "values" else _axis_free_outline(value))
            for key, value in outline.items()
        }
    if isinstance(outline, list):
        return [_axis_free_outline(item) for item in outline]
    return outline


# ---------------------------------------------------------------------- #
#  Golden regeneration:
#  PYTHONPATH=src python tests/test_explore.py --update-schema
# ---------------------------------------------------------------------- #


def _update_schema_golden() -> None:
    import tempfile

    os.environ.pop("REPRO_REMOTE_CACHE", None)
    cache_dir = tempfile.mkdtemp(prefix="repro-explore-schema-")
    out_path = os.path.join(tempfile.mkdtemp(), "frontier.json")
    argv = explore_argv(
        cache_dir, "run", "--budget", "8", "--no-progress",
        "--export", "json", "--out", out_path,
    )
    assert cli_main(argv) == 0
    with open(out_path) as handle:
        payload = json.load(handle)
    with open(EXPLORE_SCHEMA_GOLDEN, "w") as handle:
        json.dump(
            _axis_free_outline(schema_outline(payload)),
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    print(f"updated {EXPLORE_SCHEMA_GOLDEN}")


if __name__ == "__main__":
    if "--update-schema" in sys.argv:
        _update_schema_golden()
    else:
        raise SystemExit(
            "usage: PYTHONPATH=src python tests/test_explore.py --update-schema"
        )
