"""Unit tests for the in-SRAM compute schemes, array geometry and TMU."""

import math

import pytest

from repro.isa import Opcode
from repro.sram import (
    AssociativeScheme,
    BitHybridScheme,
    BitParallelScheme,
    BitSerialScheme,
    EngineGeometry,
    SramArrayGeometry,
    TMUConfig,
    TransposeMemoryUnit,
    get_scheme,
)


class TestGeometry:
    def test_array_size(self):
        array = SramArrayGeometry()
        assert array.bits == 256 * 256
        assert array.size_bytes == 8 * 1024

    def test_default_engine_matches_paper(self):
        engine = EngineGeometry()
        assert engine.bitlines == 8192
        assert engine.num_control_blocks == 8
        assert engine.lanes_per_control_block == 1024
        assert engine.compute_capacity_bytes == 256 * 1024

    def test_invalid_cb_grouping_rejected(self):
        with pytest.raises(ValueError):
            EngineGeometry(num_arrays=10, arrays_per_control_block=4)

    def test_scaling_arrays(self):
        engine = EngineGeometry(num_arrays=64)
        assert engine.bitlines == 16384
        assert engine.num_control_blocks == 16


class TestBitSerialLatencies:
    """Latency formulas of Table II (bit-serial, precision n)."""

    scheme = BitSerialScheme()

    @pytest.mark.parametrize("bits", [8, 16, 32, 64])
    def test_add_is_n(self, bits):
        assert self.scheme.op_latency(Opcode.ADD, bits) == bits

    @pytest.mark.parametrize("bits", [8, 16, 32])
    def test_sub_is_2n(self, bits):
        assert self.scheme.op_latency(Opcode.SUB, bits) == 2 * bits

    @pytest.mark.parametrize("bits", [8, 16, 32])
    def test_mul_is_quadratic(self, bits):
        assert self.scheme.op_latency(Opcode.MUL, bits) == bits * bits + 5 * bits

    @pytest.mark.parametrize("bits", [8, 32])
    def test_minmax_is_2n(self, bits):
        assert self.scheme.op_latency(Opcode.MIN, bits) == 2 * bits
        assert self.scheme.op_latency(Opcode.MAX, bits) == 2 * bits

    def test_xor_and_compare_are_n(self):
        assert self.scheme.op_latency(Opcode.XOR, 32) == 32
        assert self.scheme.op_latency(Opcode.GT, 32) == 32

    def test_shift_register_is_nlogn(self):
        assert self.scheme.op_latency(Opcode.SHIFT_REG, 32) == 32 * 5

    def test_lanes_independent_of_width(self):
        engine = EngineGeometry()
        assert self.scheme.lanes(engine, 8) == 8192
        assert self.scheme.lanes(engine, 32) == 8192

    def test_non_compute_opcode_rejected(self):
        with pytest.raises(ValueError):
            self.scheme.op_latency(Opcode.STRIDED_LOAD, 32)


class TestOtherSchemes:
    engine = EngineGeometry()

    def test_bit_parallel_trades_lanes_for_latency(self):
        bs, bp = BitSerialScheme(), BitParallelScheme()
        assert bp.lanes(self.engine, 32) == 8192 // 32
        assert bp.op_latency(Opcode.ADD, 32) < bs.op_latency(Opcode.ADD, 32)
        assert bp.op_latency(Opcode.MUL, 32) < bs.op_latency(Opcode.MUL, 32)

    def test_bit_hybrid_between_serial_and_parallel(self):
        bs, bh, bp = BitSerialScheme(), BitHybridScheme(), BitParallelScheme()
        assert bp.lanes(self.engine, 32) < bh.lanes(self.engine, 32) < bs.lanes(self.engine, 32)
        assert (
            bp.op_latency(Opcode.MUL, 32)
            <= bh.op_latency(Opcode.MUL, 32)
            <= bs.op_latency(Opcode.MUL, 32)
        )

    def test_associative_addition_cost(self):
        ac = AssociativeScheme()
        assert ac.op_latency(Opcode.ADD, 32) == 8 * 32 + 2
        assert ac.op_latency(Opcode.SUB, 32) == 8 * 32 + 2

    def test_associative_logical_ops_constant(self):
        ac = AssociativeScheme()
        assert ac.op_latency(Opcode.XOR, 8) == ac.op_latency(Opcode.XOR, 64)

    def test_associative_arithmetic_slower_than_bit_serial(self):
        ac, bs = AssociativeScheme(), BitSerialScheme()
        for opcode in (Opcode.ADD, Opcode.MUL):
            assert ac.op_latency(opcode, 32) > bs.op_latency(opcode, 32)

    def test_bit_hybrid_segment_validation(self):
        with pytest.raises(ValueError):
            BitHybridScheme(segment_bits=0)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("bit-serial", BitSerialScheme),
            ("bs", BitSerialScheme),
            ("bit-parallel", BitParallelScheme),
            ("bp", BitParallelScheme),
            ("bh", BitHybridScheme),
            ("associative", AssociativeScheme),
            ("AC", AssociativeScheme),
        ],
    )
    def test_factory(self, name, cls):
        assert isinstance(get_scheme(name), cls)

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            get_scheme("quantum")


class TestTMU:
    def test_fill_scales_with_elements(self):
        tmu = TransposeMemoryUnit()
        small = tmu.fill_cycles(128, 32)
        large = tmu.fill_cycles(1024, 32)
        assert large > small

    def test_fill_scales_with_precision(self):
        tmu = TransposeMemoryUnit()
        assert tmu.fill_cycles(512, 8) < tmu.fill_cycles(512, 32)

    def test_capacity_batching(self):
        config = TMUConfig(capacity_elements=256)
        tmu = TransposeMemoryUnit(config)
        one_batch = tmu.fill_cycles(256, 32)
        two_batches = tmu.fill_cycles(512, 32)
        assert two_batches == pytest.approx(2 * one_batch)

    def test_zero_elements_free(self):
        assert TransposeMemoryUnit().fill_cycles(0, 32) == 0

    def test_partial_final_batch_routes_remaining_elements_only(self):
        """Regression: the last partial batch used to be charged the
        full-capacity crossbar routing cost instead of its own size."""
        config = TMUConfig(capacity_elements=256, crossbar_elements_per_cycle=16)
        tmu = TransposeMemoryUnit(config)
        stream = 32 * config.row_transfer_cycles
        full_route = 256 // 16
        assert tmu.fill_cycles(256 + 16, 32) == (full_route + stream) + (1 + stream)
        # A partial batch can never cost as much as a full one.
        assert tmu.fill_cycles(257, 32) < 2 * tmu.fill_cycles(256, 32)

    def test_drain_symmetric(self):
        tmu = TransposeMemoryUnit()
        assert tmu.drain_cycles(512, 16) == tmu.fill_cycles(512, 16)

    def test_transpose_counter(self):
        tmu = TransposeMemoryUnit()
        tmu.fill_cycles(100, 8)
        tmu.fill_cycles(50, 8)
        assert tmu.elements_transposed == 150
        tmu.reset()
        assert tmu.elements_transposed == 0
