"""Unit tests for the memory substrates: flat memory, DRAM, caches.

The cache tests run against both implementations -- the scalar reference
and the batched numpy engine -- via the ``cache_class`` / ``hierarchy_class``
fixtures, so every behavioural assertion doubles as a parity check.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import DataType
from repro.memory import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    DRAMConfig,
    DRAMModel,
    FlatMemory,
    HierarchyConfig,
    VectorCache,
    VectorCacheHierarchy,
    make_hierarchy,
)


@pytest.fixture(params=[Cache, VectorCache], ids=["scalar", "vector"])
def cache_class(request):
    return request.param


@pytest.fixture(params=[CacheHierarchy, VectorCacheHierarchy], ids=["scalar", "vector"])
def hierarchy_class(request):
    return request.param


class TestFlatMemory:
    def test_allocate_and_roundtrip(self):
        mem = FlatMemory()
        alloc = mem.allocate(DataType.INT32, 16)
        alloc.write(np.arange(16, dtype=np.int32))
        np.testing.assert_array_equal(alloc.read(), np.arange(16, dtype=np.int32))

    def test_allocate_array_initialises(self):
        mem = FlatMemory()
        alloc = mem.allocate_array([1.5, 2.5], DataType.FLOAT32)
        np.testing.assert_allclose(alloc.read(), [1.5, 2.5])

    def test_alignment(self):
        mem = FlatMemory()
        mem.allocate(DataType.INT8, 3)
        second = mem.allocate(DataType.INT32, 4, align=64)
        assert second.address % 64 == 0

    def test_element_address(self):
        mem = FlatMemory()
        alloc = mem.allocate(DataType.INT32, 8)
        assert alloc.element_address(2) == alloc.address + 8
        with pytest.raises(IndexError):
            alloc.element_address(8)

    def test_gather_scatter(self):
        mem = FlatMemory()
        alloc = mem.allocate_array(np.arange(10, dtype=np.int32), DataType.INT32)
        addresses = np.array([alloc.element_address(i) for i in (3, 1, 7)])
        np.testing.assert_array_equal(
            mem.read_elements(addresses, DataType.INT32), [3, 1, 7]
        )
        mem.write_elements(addresses, np.array([30, 10, 70]), DataType.INT32)
        np.testing.assert_array_equal(alloc.read()[[3, 1, 7]], [30, 10, 70])

    def test_out_of_bounds_rejected(self):
        mem = FlatMemory(size_bytes=1024)
        with pytest.raises(IndexError):
            mem.view(mem.base_address + 2048, DataType.INT8, 1)

    def test_exhaustion(self):
        mem = FlatMemory(size_bytes=1024)
        with pytest.raises(MemoryError):
            mem.allocate(DataType.INT32, 10_000)

    def test_pointer_table(self):
        mem = FlatMemory()
        table = mem.allocate_array(
            np.array([0x2000, 0x3000], dtype=np.uint64), DataType.UINT64
        )
        pointers = mem.read_pointer_table(table.address, 2)
        np.testing.assert_array_equal(pointers, [0x2000, 0x3000])

    def test_write_wrong_count_rejected(self):
        mem = FlatMemory()
        alloc = mem.allocate(DataType.INT32, 4)
        with pytest.raises(ValueError):
            alloc.write([1, 2, 3])


class TestDRAM:
    def test_row_hit_cheaper_than_miss(self):
        dram = DRAMModel()
        miss = dram.access(0)
        # Same channel and bank, same row: 256 bytes away on a 4-channel map.
        hit = dram.access(256)
        assert hit < miss
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses == 1

    def test_different_rows_miss(self):
        dram = DRAMModel()
        dram.access(0)
        latency = dram.access(dram.config.row_size_bytes * dram.config.num_banks)
        assert latency == dram.config.row_miss_latency

    def test_large_transfer_adds_bursts(self):
        dram = DRAMModel()
        small = dram.access(0, size_bytes=64)
        dram.reset()
        large = dram.access(0, size_bytes=256)
        assert large > small

    def test_bandwidth_cycles(self):
        dram = DRAMModel(DRAMConfig(peak_bytes_per_cycle=16.0))
        assert dram.bandwidth_cycles(160) == pytest.approx(10.0)

    def test_stats_accumulate(self):
        dram = DRAMModel()
        dram.access(0, is_write=True)
        dram.access(64)
        assert dram.stats.writes == 1 and dram.stats.reads == 1
        assert dram.stats.bytes_transferred == 128
        assert 0.0 <= dram.stats.row_hit_rate() <= 1.0


def make_cache(cache_class, size=4096, ways=4, line=64):
    return cache_class(CacheConfig(name="test", size_bytes=size, ways=ways, line_bytes=line))


class TestCache:
    def test_miss_then_hit(self, cache_class):
        cache = make_cache(cache_class)
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_same_line_hits(self, cache_class):
        cache = make_cache(cache_class)
        cache.access(0x100)
        assert cache.access(0x13C) is True  # same 64-byte line

    def test_lru_eviction(self, cache_class):
        cache = make_cache(cache_class, size=4 * 64, ways=4)  # one set
        for i in range(4):
            cache.access(i * 64)
        cache.access(0)  # touch line 0 so it is MRU
        cache.access(4 * 64)  # evict the LRU line (line 1)
        assert cache.probe(0)
        assert not cache.probe(64)

    def test_writeback_counted(self, cache_class):
        cache = make_cache(cache_class, size=4 * 64, ways=4)
        for i in range(4):
            cache.access(i * 64, is_write=True)
        cache.access(4 * 64)
        assert cache.stats.writebacks >= 1

    def test_dirty_line_count(self, cache_class):
        cache = make_cache(cache_class)
        cache.access(0, is_write=True)
        cache.access(64, is_write=False)
        assert cache.dirty_line_count() == 1
        assert cache.valid_line_count() == 2

    def test_presence_bit(self, cache_class):
        cache = make_cache(cache_class)
        cache.access(0x200)
        cache.mark_present_in_l1(0x200, True)
        assert cache.present_in_l1(0x200)
        cache.mark_present_in_l1(0x200, False)
        assert not cache.present_in_l1(0x200)

    def test_num_sets_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=32, ways=4).num_sets

    def test_reset_clears_lru_state(self, cache_class):
        """Regression: lru values surviving reset() while the tick restarts
        at 0 made freshly-installed lines evict before never-touched ways."""
        cache = make_cache(cache_class, size=4 * 64, ways=4)  # one set
        for i in range(64):
            cache.access(i * 64)  # drive the tick (and lru values) up
        cache.reset()
        cache.access(0)  # fresh line, lru=1
        cache.access(64)  # must fill an invalid way, not evict line 0
        assert cache.probe(0)
        assert cache.probe(64)
        assert cache.stats.evictions == 0
        assert cache.valid_line_count() == 2

    def test_invalid_ways_preferred_over_lru(self, cache_class):
        """Victim selection fills invalid ways before evicting any valid
        line, whatever lru values the invalid ways carry."""
        cache = make_cache(cache_class, size=4 * 64, ways=4)
        cache.access(0)
        cache.access(64)
        cache.access(128)  # three valid ways, one invalid
        cache.access(192)
        assert cache.stats.evictions == 0
        cache.access(256)  # set full now: this one evicts LRU (line 0)
        assert cache.stats.evictions == 1
        assert not cache.probe(0)

    def test_last_eviction_reports_line_address(self, cache_class):
        cache = make_cache(cache_class, size=4 * 64, ways=4)
        for i in range(4):
            cache.access(i * 64)
            assert cache.last_eviction is None
        cache.access(4 * 64)
        assert cache.last_eviction == 0  # line 0 was LRU
        cache.access(4 * 64)
        assert cache.last_eviction is None  # hit


class TestCacheHierarchy:
    def test_compute_ways_shrink_l2(self, hierarchy_class):
        hierarchy = hierarchy_class(l2_compute_ways=4)
        assert hierarchy.l2.config.size_bytes == 256 * 1024
        assert hierarchy.l2.config.ways == 4

    def test_core_access_fills_levels(self, hierarchy_class):
        hierarchy = hierarchy_class()
        first = hierarchy.core_access(0x4000)
        second = hierarchy.core_access(0x4000)
        assert first.hit_level == "DRAM"
        assert second.hit_level == "L1-D"
        assert second.latency < first.latency

    def test_l2_access_coherence_eviction(self, hierarchy_class):
        hierarchy = hierarchy_class()
        hierarchy.core_access(0x8000)  # line now in L1 and marked present
        assert hierarchy.l2.present_in_l1(0x8000)
        hierarchy.l2_access(0x8000, from_core=False)
        assert not hierarchy.l2.present_in_l1(0x8000)

    def test_l1_eviction_clears_presence_bit(self, hierarchy_class):
        """Regression: when the L1 displaces a line, the L2's inclusive
        presence bit must drop with it, or engine-side accesses keep paying
        a phantom coherence penalty."""
        hierarchy = hierarchy_class()
        l1 = hierarchy.config.l1d
        target = 0x8000
        hierarchy.core_access(target)
        assert hierarchy.l2.present_in_l1(target)
        # Conflict the same L1 set until the target is evicted from L1.
        way_span = l1.num_sets * l1.line_bytes
        for i in range(1, l1.ways + 1):
            hierarchy.core_access(target + i * way_span)
        assert not hierarchy.l1d.probe(target)
        assert not hierarchy.l2.present_in_l1(target)
        # An engine access therefore pays no coherence penalty.
        result = hierarchy.l2_access(target, from_core=False)
        if result.hit_level == "L2":
            assert result.latency == hierarchy.config.l2.hit_latency

    def test_l2_eviction_back_invalidates_l1(self, hierarchy_class):
        """Regression: displacing a line from the inclusive L2 must also
        drop its L1 copy (and with it the presence bookkeeping), or the L1
        keeps serving a line the L2 no longer tracks."""
        hierarchy = hierarchy_class()
        l2 = hierarchy.l2.config
        target = 0x8000
        hierarchy.core_access(target)  # in L1 and L2, presence set
        # Stream enough conflicting lines through the engine to evict the
        # target's L2 set entirely.
        way_span = l2.num_sets * l2.line_bytes
        conflicts = [target + i * way_span for i in range(1, l2.ways + 1)]
        hierarchy.vector_block_access(conflicts)
        assert not hierarchy.l2.probe(target)
        assert not hierarchy.l1d.probe(target)
        # A fresh engine access reinstalls it without any phantom penalty.
        result = hierarchy.l2_access(target, from_core=False)
        assert result.hit_level != "L2"

    def test_vector_block_access_warm_faster(self, hierarchy_class):
        hierarchy = hierarchy_class()
        lines = [0x10000 + i * 64 for i in range(128)]
        cold = hierarchy.vector_block_access(lines)
        warm = hierarchy.vector_block_access(lines)
        assert warm < cold

    def test_vector_block_access_empty(self, hierarchy_class):
        assert hierarchy_class().vector_block_access([]) == 0
        assert hierarchy_class().vector_block_access(np.zeros(0, dtype=np.int64)) == 0

    def test_vector_block_access_returns_int(self, hierarchy_class):
        """Regression: the scalar path used to return a float (the DRAM
        bandwidth floor) despite the ``-> int`` annotation."""
        hierarchy = hierarchy_class()
        lines = [0x100000 + i * 64 for i in range(512)]
        cycles = hierarchy.vector_block_access(lines)
        assert isinstance(cycles, int)
        warm = hierarchy.vector_block_access(lines)
        assert isinstance(warm, int)

    def test_vector_block_access_ndarray_and_list_agree(self, hierarchy_class):
        addresses = [0x40000 + i * 64 for i in range(200)]
        from_list = hierarchy_class().vector_block_access(addresses)
        from_array = hierarchy_class().vector_block_access(np.asarray(addresses))
        assert from_list == from_array

    def test_vector_block_hit_and_miss_rounding_unified(self, hierarchy_class):
        """Regression: miss windows used ``len(window) // 2`` where hits
        used ``(hits - 1) // 2``; both now stream ``n - 1`` follow-on lines
        at VECTOR_LINES_PER_CYCLE, rounded up."""
        hierarchy = hierarchy_class()
        lpc = hierarchy.VECTOR_LINES_PER_CYCLE
        lines = [0x10000 + i * 64 for i in range(3)]
        hierarchy.vector_block_access(lines)  # install in L2
        warm = hierarchy.vector_block_access(lines)  # 3 hits
        assert warm == hierarchy.config.l2.hit_latency + -(-(3 - 1) // lpc)

    def test_vector_block_respects_dram_bandwidth(self, hierarchy_class):
        hierarchy = hierarchy_class()
        lines = [0x100000 + i * 64 for i in range(512)]
        cycles = hierarchy.vector_block_access(lines)
        floor = hierarchy.dram.bandwidth_cycles(512 * 64)
        assert cycles >= floor

    def test_reset_stats_keeps_contents(self, hierarchy_class):
        hierarchy = hierarchy_class()
        hierarchy.l2_access(0x9000)
        hierarchy.reset_stats()
        assert hierarchy.l2.stats.accesses == 0
        result = hierarchy.l2_access(0x9000)
        assert result.hit_level == "L2"

    def test_flush_dirty_cycles(self, hierarchy_class):
        hierarchy = hierarchy_class()
        hierarchy.l2_access(0xA000, is_write=True)
        assert hierarchy.flush_dirty_cycles() > 0


class TestDRAMBatch:
    def test_batch_matches_sequential(self):
        serial, batched = DRAMModel(), DRAMModel()
        rng = np.random.default_rng(3)
        addresses = (rng.integers(0, 1 << 20, size=300) // 64) * 64
        expected = [serial.access(int(a)) for a in addresses]
        actual = batched.access_batch(addresses)
        assert actual.tolist() == expected
        assert vars(batched.stats) == vars(serial.stats)
        assert batched._open_rows == serial._open_rows

    def test_batch_carries_open_rows_across_calls(self):
        serial, batched = DRAMModel(), DRAMModel()
        first = np.arange(0, 64 * 64, 64, dtype=np.int64)
        second = first + 256  # same rows: previous batch left them open
        for chunk in (first, second):
            expected = [serial.access(int(a)) for a in chunk]
            assert batched.access_batch(chunk).tolist() == expected
        assert batched.stats.row_hits == serial.stats.row_hits > 0

    def test_batch_write_and_size_accounting(self):
        serial, batched = DRAMModel(), DRAMModel()
        addresses = np.arange(0, 32 * 256, 256, dtype=np.int64)
        expected = [serial.access(int(a), is_write=True, size_bytes=128) for a in addresses]
        assert batched.access_batch(addresses, is_write=True, size_bytes=128).tolist() == expected
        assert vars(batched.stats) == vars(serial.stats)

    def test_empty_batch(self):
        dram = DRAMModel()
        assert dram.access_batch(np.zeros(0, dtype=np.int64)).size == 0
        assert dram.stats.reads == 0


#: one batch of the access stream: burst-unit addresses (a tight universe so
#: channels, banks and rows all collide), one transfer size, read or write
_dram_chunk = st.tuples(
    st.lists(st.integers(min_value=0, max_value=255), min_size=0, max_size=24),
    st.sampled_from([16, 64, 128, 256]),
    st.booleans(),
)


class TestDRAMBatchSeams:
    """Satellite: the batched DRAM path agrees with a scalar ``access``
    replay *across* batch boundaries -- open rows carried from one batch to
    the next, mixed transfer sizes, reads interleaved with writes."""

    @settings(deadline=None, max_examples=50)
    @given(chunks=st.lists(_dram_chunk, min_size=1, max_size=6))
    def test_consecutive_batches_match_scalar_replay(self, chunks):
        batched, serial = DRAMModel(), DRAMModel()
        for units, size_bytes, is_write in chunks:
            addresses = np.asarray(units, dtype=np.int64) * 64
            expected = [
                serial.access(int(a), is_write=is_write, size_bytes=size_bytes)
                for a in addresses
            ]
            actual = batched.access_batch(addresses, is_write=is_write, size_bytes=size_bytes)
            assert actual.tolist() == expected
        assert vars(batched.stats) == vars(serial.stats)
        assert batched._open_rows == serial._open_rows

    def test_classification_is_timing_independent(self):
        """Structure-equal configs classify a stream identically, so one
        ``classify_batch`` pass can be re-priced under many timing variants
        -- the seam the config-batched replay engine leans on."""
        base = DRAMConfig()
        slow = DRAMConfig(t_cas=60, t_rcd=70, t_rp=70, t_burst=12)
        assert slow.structure == base.structure

        classifier = DRAMModel(base)
        direct = DRAMModel(slow)
        pricer = DRAMModel(slow)  # stateless pricing helper
        rng = np.random.default_rng(11)
        for _ in range(3):
            chunk = ((rng.integers(0, 1 << 16, size=40) // 64) * 64).astype(np.int64)
            row_hit = classifier.classify_batch(chunk)
            repriced = pricer.latencies_from_classification(row_hit, 64)
            assert repriced.tolist() == direct.access_batch(chunk).tolist()
        assert classifier.stats.row_hits == direct.stats.row_hits
        assert classifier._open_rows == direct._open_rows


class TestEvictionParity:
    """Satellite: ``take_evictions`` may reorder against a per-access replay
    (hot sets replay first) but always yields the scalar reference's eviction
    *multiset*, and inclusive back-invalidation lands on the same L1 state."""

    @staticmethod
    def _conflict_addresses(num_sets, line_bytes):
        # Twelve lines on set 0 (above the hot-set replay threshold of 8)
        # interleaved with three conflicting lines on each of sets 1..8.
        hot = [(k * num_sets) * line_bytes for k in range(12)]
        spread = [
            (k * num_sets + s) * line_bytes for s in range(1, 9) for k in range(3)
        ]
        interleaved = []
        for i in range(max(len(hot), len(spread))):
            if i < len(spread):
                interleaved.append(spread[i])
            if i < len(hot):
                interleaved.append(hot[i])
        return interleaved

    def test_eviction_multiset_matches_scalar_reference(self):
        cfg = CacheConfig(name="T", size_bytes=8 * 1024, ways=2)
        addrs = self._conflict_addresses(cfg.num_sets, cfg.line_bytes)
        vec, ref = VectorCache(cfg), Cache(cfg)

        hits = vec.access_batch(np.array(addrs, dtype=np.int64), collect_evictions=True)
        evictions = vec.take_evictions()

        ref_hits, ref_evictions = [], []
        for a in addrs:
            ref_hits.append(ref.access(a))
            if ref.last_eviction is not None:
                ref_evictions.append(ref.last_eviction)

        assert len(ref_evictions) >= 10  # the stream really causes evictions
        assert hits.tolist() == ref_hits
        assert sorted(evictions.tolist()) == sorted(ref_evictions)
        assert vec.valid_line_count() == ref.valid_line_count()
        assert all(vec.probe(a) == ref.probe(a) for a in addrs)

    def test_back_invalidation_leaves_identical_l1_state(self):
        scalar = CacheHierarchy()
        vector = VectorCacheHierarchy()
        num_sets = scalar.l2.config.num_sets
        line = scalar.line_bytes

        # Fill set 0's storage ways through the core so the lines sit in L1
        # *and* L2; the engine batch then evicts them from L2, which must
        # back-invalidate the L1 copies in both implementations.
        warm = [(k * num_sets) * line for k in range(scalar.l2.config.ways)]
        batch = np.array(
            [(k * num_sets) * line for k in range(4, 16)]
            + [(k * num_sets + s) * line for k in range(3) for s in range(1, 5)],
            dtype=np.int64,
        )
        for hierarchy in (scalar, vector):
            for address in warm:
                hierarchy.core_access(address)
        assert all(scalar.l1d.probe(a) for a in warm)

        assert vector.vector_block_access(batch) == scalar.vector_block_access(batch)
        assert not any(scalar.l1d.probe(a) for a in warm)  # victims invalidated
        for a in warm:
            assert vector.l1d.probe(a) == scalar.l1d.probe(a)
            assert vector.l2.probe(a) == scalar.l2.probe(a)
        assert vector.l1d.valid_line_count() == scalar.l1d.valid_line_count()
        assert vars(vector.l2.stats) == vars(scalar.l2.stats)
        assert vars(vector.llc.stats) == vars(scalar.llc.stats)
        assert vars(vector.dram.stats) == vars(scalar.dram.stats)


class TestEngineSelection:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALAR_CACHE", raising=False)
        assert isinstance(make_hierarchy(), VectorCacheHierarchy)

    def test_env_switch_selects_scalar_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_CACHE", "1")
        hierarchy = make_hierarchy()
        assert type(hierarchy) is CacheHierarchy

    def test_explicit_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_CACHE", "1")
        assert isinstance(make_hierarchy(scalar=False), VectorCacheHierarchy)
