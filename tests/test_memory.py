"""Unit tests for the memory substrates: flat memory, DRAM, caches."""

import numpy as np
import pytest

from repro.isa import DataType
from repro.memory import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    DRAMConfig,
    DRAMModel,
    FlatMemory,
    HierarchyConfig,
)


class TestFlatMemory:
    def test_allocate_and_roundtrip(self):
        mem = FlatMemory()
        alloc = mem.allocate(DataType.INT32, 16)
        alloc.write(np.arange(16, dtype=np.int32))
        np.testing.assert_array_equal(alloc.read(), np.arange(16, dtype=np.int32))

    def test_allocate_array_initialises(self):
        mem = FlatMemory()
        alloc = mem.allocate_array([1.5, 2.5], DataType.FLOAT32)
        np.testing.assert_allclose(alloc.read(), [1.5, 2.5])

    def test_alignment(self):
        mem = FlatMemory()
        mem.allocate(DataType.INT8, 3)
        second = mem.allocate(DataType.INT32, 4, align=64)
        assert second.address % 64 == 0

    def test_element_address(self):
        mem = FlatMemory()
        alloc = mem.allocate(DataType.INT32, 8)
        assert alloc.element_address(2) == alloc.address + 8
        with pytest.raises(IndexError):
            alloc.element_address(8)

    def test_gather_scatter(self):
        mem = FlatMemory()
        alloc = mem.allocate_array(np.arange(10, dtype=np.int32), DataType.INT32)
        addresses = np.array([alloc.element_address(i) for i in (3, 1, 7)])
        np.testing.assert_array_equal(
            mem.read_elements(addresses, DataType.INT32), [3, 1, 7]
        )
        mem.write_elements(addresses, np.array([30, 10, 70]), DataType.INT32)
        np.testing.assert_array_equal(alloc.read()[[3, 1, 7]], [30, 10, 70])

    def test_out_of_bounds_rejected(self):
        mem = FlatMemory(size_bytes=1024)
        with pytest.raises(IndexError):
            mem.view(mem.base_address + 2048, DataType.INT8, 1)

    def test_exhaustion(self):
        mem = FlatMemory(size_bytes=1024)
        with pytest.raises(MemoryError):
            mem.allocate(DataType.INT32, 10_000)

    def test_pointer_table(self):
        mem = FlatMemory()
        table = mem.allocate_array(
            np.array([0x2000, 0x3000], dtype=np.uint64), DataType.UINT64
        )
        pointers = mem.read_pointer_table(table.address, 2)
        np.testing.assert_array_equal(pointers, [0x2000, 0x3000])

    def test_write_wrong_count_rejected(self):
        mem = FlatMemory()
        alloc = mem.allocate(DataType.INT32, 4)
        with pytest.raises(ValueError):
            alloc.write([1, 2, 3])


class TestDRAM:
    def test_row_hit_cheaper_than_miss(self):
        dram = DRAMModel()
        miss = dram.access(0)
        # Same channel and bank, same row: 256 bytes away on a 4-channel map.
        hit = dram.access(256)
        assert hit < miss
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses == 1

    def test_different_rows_miss(self):
        dram = DRAMModel()
        dram.access(0)
        latency = dram.access(dram.config.row_size_bytes * dram.config.num_banks)
        assert latency == dram.config.row_miss_latency

    def test_large_transfer_adds_bursts(self):
        dram = DRAMModel()
        small = dram.access(0, size_bytes=64)
        dram.reset()
        large = dram.access(0, size_bytes=256)
        assert large > small

    def test_bandwidth_cycles(self):
        dram = DRAMModel(DRAMConfig(peak_bytes_per_cycle=16.0))
        assert dram.bandwidth_cycles(160) == pytest.approx(10.0)

    def test_stats_accumulate(self):
        dram = DRAMModel()
        dram.access(0, is_write=True)
        dram.access(64)
        assert dram.stats.writes == 1 and dram.stats.reads == 1
        assert dram.stats.bytes_transferred == 128
        assert 0.0 <= dram.stats.row_hit_rate() <= 1.0


class TestCache:
    def make_cache(self, size=4096, ways=4, line=64):
        return Cache(CacheConfig(name="test", size_bytes=size, ways=ways, line_bytes=line))

    def test_miss_then_hit(self):
        cache = self.make_cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_same_line_hits(self):
        cache = self.make_cache()
        cache.access(0x100)
        assert cache.access(0x13C) is True  # same 64-byte line

    def test_lru_eviction(self):
        cache = self.make_cache(size=4 * 64, ways=4)  # one set
        for i in range(4):
            cache.access(i * 64)
        cache.access(0)  # touch line 0 so it is MRU
        cache.access(4 * 64)  # evict the LRU line (line 1)
        assert cache.probe(0)
        assert not cache.probe(64)

    def test_writeback_counted(self):
        cache = self.make_cache(size=4 * 64, ways=4)
        for i in range(4):
            cache.access(i * 64, is_write=True)
        cache.access(4 * 64)
        assert cache.stats.writebacks >= 1

    def test_dirty_line_count(self):
        cache = self.make_cache()
        cache.access(0, is_write=True)
        cache.access(64, is_write=False)
        assert cache.dirty_line_count() == 1
        assert cache.valid_line_count() == 2

    def test_presence_bit(self):
        cache = self.make_cache()
        cache.access(0x200)
        cache.mark_present_in_l1(0x200, True)
        assert cache.present_in_l1(0x200)
        cache.mark_present_in_l1(0x200, False)
        assert not cache.present_in_l1(0x200)

    def test_num_sets_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=32, ways=4).num_sets


class TestCacheHierarchy:
    def test_compute_ways_shrink_l2(self):
        hierarchy = CacheHierarchy(l2_compute_ways=4)
        assert hierarchy.l2.config.size_bytes == 256 * 1024
        assert hierarchy.l2.config.ways == 4

    def test_core_access_fills_levels(self):
        hierarchy = CacheHierarchy()
        first = hierarchy.core_access(0x4000)
        second = hierarchy.core_access(0x4000)
        assert first.hit_level == "DRAM"
        assert second.hit_level == "L1-D"
        assert second.latency < first.latency

    def test_l2_access_coherence_eviction(self):
        hierarchy = CacheHierarchy()
        hierarchy.core_access(0x8000)  # line now in L1 and marked present
        assert hierarchy.l2.present_in_l1(0x8000)
        hierarchy.l2_access(0x8000, from_core=False)
        assert not hierarchy.l2.present_in_l1(0x8000)

    def test_vector_block_access_warm_faster(self):
        hierarchy = CacheHierarchy()
        lines = [0x10000 + i * 64 for i in range(128)]
        cold = hierarchy.vector_block_access(lines)
        warm = hierarchy.vector_block_access(lines)
        assert warm < cold

    def test_vector_block_access_empty(self):
        assert CacheHierarchy().vector_block_access([]) == 0

    def test_vector_block_respects_dram_bandwidth(self):
        hierarchy = CacheHierarchy()
        lines = [0x100000 + i * 64 for i in range(512)]
        cycles = hierarchy.vector_block_access(lines)
        floor = hierarchy.dram.bandwidth_cycles(512 * 64)
        assert cycles >= floor

    def test_reset_stats_keeps_contents(self):
        hierarchy = CacheHierarchy()
        hierarchy.l2_access(0x9000)
        hierarchy.reset_stats()
        assert hierarchy.l2.stats.accesses == 0
        result = hierarchy.l2_access(0x9000)
        assert result.hit_level == "L2"

    def test_flush_dirty_cycles(self):
        hierarchy = CacheHierarchy()
        hierarchy.l2_access(0xA000, is_write=True)
        assert hierarchy.flush_dirty_cycles() > 0
