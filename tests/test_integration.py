"""End-to-end integration tests across the whole stack.

These tests exercise the public API the way a downstream user would: write a
kernel against the intrinsic machine, compile it, simulate it on different
engine configurations, and compare against the baseline models.
"""

import numpy as np
import pytest

from repro import DataType, FlatMemory, MVEMachine, default_config, simulate_kernel
from repro.baselines import KernelProfile, NeonModel
from repro.compiler import compile_trace
from repro.sram import get_scheme
from repro.workloads import create_kernel


class TestEndToEndCustomKernel:
    """A user-defined saxpy-like kernel through the full tool flow."""

    N = 4096

    def build(self):
        memory = FlatMemory()
        machine = MVEMachine(memory)
        x = memory.allocate_array(np.linspace(0, 1, self.N, dtype=np.float32), DataType.FLOAT32)
        y = memory.allocate_array(np.linspace(1, 2, self.N, dtype=np.float32), DataType.FLOAT32)
        out = memory.allocate(DataType.FLOAT32, self.N)
        machine.vsetdimc(1)
        machine.vsetdiml(0, self.N)
        machine.scalar(10)
        vx = machine.vsld(DataType.FLOAT32, x.address, (1,))
        vy = machine.vsld(DataType.FLOAT32, y.address, (1,))
        alpha = machine.vsetdup(DataType.FLOAT32, 2.0)
        machine.vsst(machine.vadd(machine.vmul(vx, alpha), vy), out.address, (1,))
        return machine, x, y, out

    def test_functional_result_correct(self):
        machine, x, y, out = self.build()
        expected = 2.0 * x.read() + y.read()
        np.testing.assert_allclose(out.read(), expected, rtol=1e-6)

    def test_compile_then_simulate(self):
        machine, *_ = self.build()
        compiled = compile_trace(machine.trace)
        result, _ = simulate_kernel(compiled.trace, compile_first=False)
        assert result.total_cycles > 0
        assert result.vector_instructions["memory"] == 3
        assert result.time_ms > 0 and result.energy_nj > 0

    def test_all_schemes_run_the_same_trace(self):
        machine, *_ = self.build()
        cycles = {}
        for scheme in ("bs", "bh", "bp", "ac"):
            result, _ = simulate_kernel(machine.trace, scheme=get_scheme(scheme))
            cycles[scheme] = result.compute_cycles
        # bit-parallel trades lanes for latency; associative is slowest on mul
        assert cycles["ac"] > cycles["bs"]
        assert cycles["bp"] > 0 and cycles["bh"] > 0


class TestEndToEndWorkloads:
    def test_workload_through_simulator_and_neon(self):
        kernel = create_kernel("skia_srcover", scale=0.1)
        trace = kernel.trace_mve()
        mve, compiled = simulate_kernel(trace)
        neon = NeonModel().run(kernel.profile())
        assert kernel.validate()
        assert mve.total_cycles > 0 and neon.total_cycles > 0
        assert compiled.element_bits == 32

    def test_scaling_arrays_scales_speed(self):
        # Large enough that the 8-array engine needs several tiles.
        kernel = create_kernel("fir_l", scale=1.0)
        config8 = default_config().with_arrays(8)
        config64 = default_config().with_arrays(64)
        small, _ = simulate_kernel(kernel.trace_mve(simd_lanes=config8.simd_lanes), config8)
        large, _ = simulate_kernel(kernel.trace_mve(simd_lanes=config64.simd_lanes), config64)
        assert large.total_cycles < small.total_cycles

    def test_low_precision_kernels_gain_more_than_fp32(self):
        """The Figure 12(c) trend holds across real suite kernels."""
        neon = NeonModel()
        int8_kernel = create_kernel("xor_stream", scale=0.25)
        fp32_kernel = create_kernel("audio_gain", scale=0.25)
        int8_kernel.setup()
        fp32_kernel.setup()
        int8_speedup = (
            neon.run(int8_kernel.profile()).time_ms
            / simulate_kernel(int8_kernel.trace_mve())[0].time_ms
        )
        fp32_speedup = (
            neon.run(fp32_kernel.profile()).time_ms
            / simulate_kernel(fp32_kernel.trace_mve())[0].time_ms
        )
        assert int8_speedup > fp32_speedup

    def test_dimension_level_masking_reduces_active_elements(self):
        kernel = create_kernel("csum", scale=0.1)
        trace = kernel.trace_mve()
        from repro.isa import MemoryInstruction

        masked_stores = [
            e
            for e in trace
            if isinstance(e, MemoryInstruction) and e.mask and not all(e.mask)
        ]
        assert masked_stores, "the reduction pattern should use dimension-level masks"
        for store in masked_stores:
            assert store.active_elements() < store.total_elements

    def test_spill_free_suite_at_default_width(self):
        """Representative kernels fit the physical register file without spills."""
        for name in ("gemm", "intra", "skia_srcover"):
            kernel = create_kernel(name, scale=0.1)
            _, compiled = simulate_kernel(kernel.trace_mve())
            assert compiled.spill_count == 0, f"{name} unexpectedly spilled"


class TestReproducibility:
    def test_same_seed_same_cycles(self):
        a = simulate_kernel(create_kernel("gemm", scale=0.1, seed=3).trace_mve())[0]
        b = simulate_kernel(create_kernel("gemm", scale=0.1, seed=3).trace_mve())[0]
        assert a.total_cycles == b.total_cycles
        assert a.energy_nj == pytest.approx(b.energy_nj)

    def test_profile_independent_of_trace(self):
        kernel = create_kernel("gemm", scale=0.1)
        kernel.setup()
        p1 = kernel.profile()
        kernel.trace_mve()
        p2 = kernel.profile()
        assert p1.total_ops == p2.total_ops
