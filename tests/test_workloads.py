"""Workload-suite tests: registry, functional validation of every kernel,
trace properties, baseline profiles and RVV lowerings."""

import numpy as np
import pytest

from repro.isa import InstructionCategory, ScalarBlock
from repro.workloads import (
    LIBRARY_DOMAINS,
    SELECTED_KERNELS,
    create_kernel,
    get_kernel_class,
    kernel_names,
    kernels_in_library,
    library_names,
)

#: small dataset scale so the whole suite validates quickly
SCALE = 0.1

ALL_KERNELS = kernel_names()
RVV_KERNELS = [name for name in ALL_KERNELS if get_kernel_class(name)(scale=SCALE).supports_rvv]


class TestRegistry:
    def test_twelve_libraries(self):
        assert len(library_names()) == 12
        assert set(LIBRARY_DOMAINS) == set(library_names())

    def test_every_library_has_kernels(self):
        for library in library_names():
            assert kernels_in_library(library), f"no kernels registered for {library}"

    def test_suite_size(self):
        assert len(ALL_KERNELS) >= 30

    def test_selected_kernels_exist(self):
        for name in SELECTED_KERNELS:
            assert name in ALL_KERNELS

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernel_class("not_a_kernel")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            create_kernel("gemm", scale=0)

    def test_kernel_metadata(self):
        for name in ALL_KERNELS:
            cls = get_kernel_class(name)
            assert cls.library in LIBRARY_DOMAINS
            assert cls.dims
            assert cls.description


class TestFunctionalValidation:
    """Every kernel's MVE implementation must match its numpy reference."""

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_kernel_validates(self, name):
        kernel = create_kernel(name, scale=SCALE)
        assert kernel.validate(), f"{name} output does not match its reference"

    @pytest.mark.parametrize("name", ["gemm", "csum", "intra", "h2v2_upsample"])
    def test_validation_is_deterministic_across_seeds(self, name):
        assert create_kernel(name, scale=SCALE, seed=1).validate()
        assert create_kernel(name, scale=SCALE, seed=2).validate()


class TestTraces:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_trace_is_nonempty_and_typed(self, name):
        kernel = create_kernel(name, scale=SCALE)
        trace = kernel.trace_mve()
        assert trace, f"{name} produced an empty trace"
        categories = {
            entry.category
            for entry in trace
            if not isinstance(entry, ScalarBlock)
        }
        assert InstructionCategory.MEMORY in categories

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_profile_is_consistent(self, name):
        kernel = create_kernel(name, scale=SCALE)
        kernel.setup()
        profile = kernel.profile()
        assert profile.elements > 0
        assert profile.total_bytes > 0
        assert profile.element_bits in (8, 16, 32, 64)
        assert profile.dimensions >= 1

    def test_scale_grows_work(self):
        small = create_kernel("memcpy", scale=0.05)
        large = create_kernel("memcpy", scale=0.5)
        small.setup(), large.setup()
        assert large.profile().elements > small.profile().elements


class TestRvvLowerings:
    def test_selected_kernels_support_rvv(self):
        for name in SELECTED_KERNELS:
            assert get_kernel_class(name)(scale=SCALE).supports_rvv

    def test_unsupported_kernel_raises(self):
        kernel = create_kernel("memcpy", scale=SCALE)
        from repro.intrinsics import MVEMachine

        assert not kernel.supports_rvv
        with pytest.raises(NotImplementedError):
            kernel.setup()
            kernel.run_rvv(MVEMachine(kernel.memory))

    @pytest.mark.parametrize("name", ["gemm", "spmm", "intra", "fir_v"])
    def test_rvv_needs_more_vector_instructions_for_multidim(self, name):
        kernel = create_kernel(name, scale=SCALE)
        mve_vector = sum(
            1 for e in kernel.trace_mve() if not isinstance(e, ScalarBlock)
        )
        rvv_vector = sum(
            1 for e in kernel.trace_rvv() if not isinstance(e, ScalarBlock)
        )
        assert rvv_vector > mve_vector

    @pytest.mark.parametrize("name", ["csum", "lpack"])
    def test_rvv_similar_for_1d_kernels(self, name):
        kernel = create_kernel(name, scale=SCALE)
        mve_vector = sum(1 for e in kernel.trace_mve() if not isinstance(e, ScalarBlock))
        rvv_vector = sum(1 for e in kernel.trace_rvv() if not isinstance(e, ScalarBlock))
        assert rvv_vector <= mve_vector * 2


class TestSpecificKernels:
    def test_gemm_respects_shape_overrides(self):
        kernel = get_kernel_class("gemm")(scale=1.0, n=16, k=8, m=8)
        kernel.setup()
        assert (kernel.n, kernel.k, kernel.m) == (16, 8, 8)
        assert kernel.validate()

    def test_spmm_respects_overrides(self):
        kernel = get_kernel_class("spmm")(scale=1.0, n=16, k=32, m=16, nnz=4)
        kernel.setup()
        assert kernel.nnz == 4
        assert kernel.validate()

    def test_transpose_output_is_transpose(self):
        kernel = create_kernel("transpose", scale=0.1)
        assert kernel.validate()
        out = kernel.output().reshape(kernel.cols, kernel.rows)
        np.testing.assert_array_equal(out, kernel._input_ref.T)

    def test_upsample_replicates_pixels(self):
        kernel = create_kernel("h2v2_upsample", scale=0.1)
        assert kernel.validate()
        out = kernel.output().reshape(kernel.rows, kernel.cols * 2)
        np.testing.assert_array_equal(out[:, 0], out[:, 1])

    def test_checksum_matches_direct_sum(self):
        kernel = create_kernel("csum", scale=0.1)
        kernel.setup()
        from repro.intrinsics import MVEMachine

        machine = MVEMachine(kernel.memory)
        kernel.run_mve(machine)
        assert int(kernel.output()[0]) == int(kernel._data_ref.astype(np.int64).sum())

    def test_dct_is_invertible_shape(self):
        dct = create_kernel("dct", scale=0.02)
        idct = create_kernel("idct", scale=0.02)
        assert dct.validate() and idct.validate()

    def test_adler32_outputs_two_sums(self):
        kernel = create_kernel("adler32", scale=0.1)
        assert kernel.validate()
        assert kernel.output().shape == (2,)
