"""Unit tests for the baseline models: Neon, GPU, Duality Cache, RVV emitter."""

import numpy as np
import pytest

from repro.baselines import (
    DualityCacheModel,
    GPUConfig,
    GPUModel,
    KernelProfile,
    NeonModel,
    RVVEmitter,
    to_simt_trace,
)
from repro.compiler import compile_trace
from repro.core import default_config, simulate_kernel
from repro.intrinsics import MVEMachine
from repro.isa import DataType, InstructionCategory, ScalarBlock
from repro.memory import FlatMemory


def make_profile(**overrides):
    defaults = dict(
        name="test",
        element_bits=32,
        is_float=True,
        elements=8192,
        ops_per_element={"mac": 4.0},
        bytes_read=8192 * 8,
        bytes_written=8192 * 4,
    )
    defaults.update(overrides)
    return KernelProfile(**defaults)


class TestKernelProfile:
    def test_total_ops_counts_mac_twice(self):
        profile = make_profile(ops_per_element={"mac": 1.0}, elements=100)
        assert profile.total_ops == 200

    def test_flops_zero_for_integer(self):
        assert make_profile(is_float=False).flops == 0

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(ValueError):
            make_profile(ops_per_element={"fma4": 1.0})

    def test_arithmetic_intensity(self):
        profile = make_profile()
        assert profile.arithmetic_intensity == pytest.approx(
            profile.total_ops / profile.total_bytes
        )


class TestNeonModel:
    def test_more_elements_take_longer(self):
        model = NeonModel()
        small = model.run(make_profile(elements=1024, bytes_read=1024 * 8, bytes_written=1024 * 4))
        large = model.run(make_profile())
        assert large.total_cycles > small.total_cycles

    def test_lower_precision_packs_more_lanes(self):
        model = NeonModel()
        int8 = model.run(make_profile(element_bits=8, is_float=False))
        fp32 = model.run(make_profile())
        assert int8.compute_cycles < fp32.compute_cycles

    def test_memory_bound_when_no_ops(self):
        model = NeonModel()
        result = model.run(make_profile(ops_per_element={}))
        assert result.memory_cycles > 0
        assert result.total_cycles >= result.memory_cycles

    def test_energy_positive(self):
        assert NeonModel().run(make_profile()).energy_nj > 0

    def test_efficiency_knob(self):
        fast = NeonModel(simd_efficiency=1.0).run(make_profile())
        slow = NeonModel(simd_efficiency=0.25).run(make_profile())
        assert slow.total_cycles > fast.total_cycles


class TestGPUModel:
    def test_launch_overhead_dominates_small_kernels(self):
        model = GPUModel()
        tiny = model.run(make_profile(elements=64, bytes_read=512, bytes_written=256))
        assert tiny.launch_time_s >= tiny.kernel_time_s

    def test_transfer_optional(self):
        model = GPUModel()
        with_copy = model.run(make_profile())
        without = model.run(make_profile(), include_transfer=False)
        assert with_copy.total_time_s > without.total_time_s

    def test_compute_bound_for_large_gemm(self):
        model = GPUModel()
        profile = make_profile(
            elements=1_000_000, ops_per_element={"mac": 64.0},
            bytes_read=8_000_000, bytes_written=4_000_000,
        )
        result = model.run(profile)
        assert result.kernel_time_s > result.launch_time_s

    def test_energy_scales_with_time(self):
        model = GPUModel(GPUConfig(execute_power_w=5.0))
        low_power = GPUModel(GPUConfig(execute_power_w=1.0))
        profile = make_profile(elements=1_000_000, ops_per_element={"mac": 32.0})
        assert model.run(profile).energy_j > low_power.run(profile).energy_j


class TestDualityCache:
    def _compiled_trace(self):
        memory = FlatMemory()
        machine = MVEMachine(memory)
        data = memory.allocate_array(np.arange(1024, dtype=np.int32), DataType.INT32)
        out = memory.allocate(DataType.INT32, 1024)
        machine.vsetdimc(1)
        machine.vsetdiml(0, 1024)
        machine.scalar(16)
        value = machine.vsld(DataType.INT32, data.address, (1,))
        machine.vsst(machine.vadd(value, value), out.address, (1,))
        return compile_trace(machine.trace).trace

    def test_simt_trace_adds_address_calculation(self):
        trace = self._compiled_trace()
        simt = to_simt_trace(trace)
        original_arith = sum(
            1 for e in trace
            if not isinstance(e, ScalarBlock) and e.category is InstructionCategory.ARITHMETIC
        )
        simt_arith = sum(
            1 for e in simt
            if not isinstance(e, ScalarBlock) and e.category is InstructionCategory.ARITHMETIC
        )
        assert simt_arith > original_arith

    def test_simt_trace_removes_scalar_blocks(self):
        simt = to_simt_trace(self._compiled_trace())
        assert not any(isinstance(e, ScalarBlock) for e in simt)

    def test_simt_slower_than_simd(self):
        trace = self._compiled_trace()
        mve = simulate_kernel(trace, compile_first=False)[0]
        dc = DualityCacheModel().run(trace)
        assert dc.total_cycles > mve.total_cycles


class TestRVVEmitter:
    def test_multidim_load_emits_per_segment_overhead(self):
        memory = FlatMemory()
        machine = MVEMachine(memory)
        memory.allocate_array(np.arange(64, dtype=np.int32), DataType.INT32)
        emitter = RVVEmitter(machine)
        emitter.load_multidim(DataType.INT32, memory.base_address, 8, 4, 8)
        stats = machine.stats()
        assert stats.memory == 4          # one partial load per segment
        assert stats.move == 4            # one packing move per segment
        assert stats.scalar >= 4 * 6      # per-segment scalar bookkeeping

    def test_strided_load_uses_stride_register(self):
        memory = FlatMemory()
        machine = MVEMachine(memory)
        data = memory.allocate_array(np.arange(64, dtype=np.int32), DataType.INT32)
        emitter = RVVEmitter(machine)
        emitter.set_vector_length(8)
        value = emitter.load_1d(DataType.INT32, data.address, stride_elements=4)
        np.testing.assert_array_equal(value.values, np.arange(0, 32, 4))

    def test_segments_for(self):
        machine = MVEMachine(FlatMemory(), simd_lanes=8192)
        emitter = RVVEmitter(machine)
        assert emitter.segments_for(1024) == 8
        assert emitter.segments_for(10000) == 1


class TestRunRVVTrace:
    def _trace(self):
        memory = FlatMemory()
        machine = MVEMachine(memory)
        data = memory.allocate_array(np.arange(256, dtype=np.int32), DataType.INT32)
        out = memory.allocate(DataType.INT32, 256)
        emitter = RVVEmitter(machine)
        emitter.set_vector_length(256)
        value = emitter.load_1d(DataType.INT32, data.address)
        emitter.store_1d(machine.vadd(value, value), out.address)
        return machine.trace

    def test_result_store_round_trip_is_bit_exact(self, tmp_path):
        from repro.baselines.rvv import run_rvv_trace
        from repro.core.cache import ResultStore

        trace = self._trace()
        plain = run_rvv_trace(trace)
        store = ResultStore(tmp_path / "rvv-cache")
        computed = run_rvv_trace(trace, store=store)
        assert store.misses >= 1 and len(store) == 1
        cached = run_rvv_trace(trace, store=store)
        assert store.hits >= 1
        assert cached.to_dict() == computed.to_dict() == plain.to_dict()

    def test_different_scheme_misses_the_cache(self, tmp_path):
        from repro.baselines.rvv import run_rvv_trace
        from repro.core.cache import ResultStore
        from repro.sram.schemes import get_scheme

        trace = self._trace()
        store = ResultStore(tmp_path / "rvv-cache")
        run_rvv_trace(trace, store=store)
        run_rvv_trace(trace, scheme=get_scheme("bit-parallel"), store=store)
        assert len(store) == 2
