"""The read-heavy results surface: ``GET /v1/experiments`` + ``repro export``.

The contract under test is byte-identity: one assembled result in the
store must leave through every door -- ``python -m repro run --export``,
``GET /v1/experiments/<name>`` (JSON and CSV), and the static dataset
exporter (``python -m repro export``) -- as the *same bytes*.  On top of
that: content-addressed ``ETag`` revalidation (a matching
``If-None-Match`` answers 304 without loading the record), offset/limit
pagination sharing one header across pages, read routes that stay
token-free on an authed server, and a ThreadingHTTPServer that sustains
thousands of concurrent keep-alive reads.

The warm store is shared with ``tests/test_cli.py``'s schema-golden suite
(same fixed session directory), so the 11 reduced-scale experiment runs
happen once per pytest session, not twice.
"""

import http.client
import json
import os
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.core.cache_service import CacheServer
from repro.experiments.export import (
    EXPORT_SCHEMA_VERSION,
    export_rows,
    schema_outline,
)
from repro.experiments.registry import (
    ExperimentOptions,
    experiment_names,
    experiment_store_key,
    get_experiment,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: every experiment is warmed and served at this reduced dataset scale
SCALE = 0.1


# ---------------------------------------------------------------------- #
#  Fixtures: one warm store, one server, per session
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="session")
def warm_store_dir(tmp_path_factory):
    """A store holding every registered experiment, assembled at SCALE.

    Resolves the same directory as test_cli.py's ``schema_cache_dir`` (or
    $REPRO_SWEEP_CACHE_DIR when set), so when the golden suite already ran
    this session the warm-up below is pure store hits.
    """
    env = os.environ.get("REPRO_SWEEP_CACHE_DIR")
    if env:
        root = env
    else:
        base = tmp_path_factory.getbasetemp() / "schema-cache"
        base.mkdir(exist_ok=True)
        root = str(base)
    for name in experiment_names():
        argv = ["--cache-dir", root, "run", name, "--scale", str(SCALE),
                "--no-progress"]
        assert cli_main(argv) == 0
    return root


@pytest.fixture(scope="session")
def read_server(warm_store_dir):
    """A CacheServer fronting the warm store (reads only in these tests)."""
    srv = CacheServer(("127.0.0.1", 0), root=warm_store_dir)
    srv.start_in_background()
    yield srv
    srv.shutdown()
    srv.server_close()


def fetch(url, headers=None):
    """(status, headers, body) for a GET, without raising on 3xx/4xx."""
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as err:
        with err:
            return err.code, dict(err.headers), err.read()


def cli_export_bytes(cache_dir, name, fmt, out_dir):
    """The exact bytes ``python -m repro run --export`` writes."""
    out_path = out_dir / f"{name}.{fmt}"
    argv = ["--cache-dir", cache_dir, "run", name, "--scale", str(SCALE),
            "--export", fmt, "--out", str(out_path), "--no-progress"]
    assert cli_main(argv) == 0
    return out_path.read_bytes()


# ---------------------------------------------------------------------- #
#  Catalog
# ---------------------------------------------------------------------- #


class TestCatalog:
    def test_catalog_lists_every_experiment_with_availability(self, read_server):
        status, _, body = fetch(
            f"{read_server.url}/v1/experiments?scale={SCALE}"
        )
        assert status == 200
        catalog = json.loads(body)
        assert catalog["schema"] == EXPORT_SCHEMA_VERSION
        assert catalog["scale"] == SCALE
        rows = {row["name"]: row for row in catalog["experiments"]}
        assert set(rows) == set(experiment_names())
        options = ExperimentOptions(scale=SCALE)
        for name, row in rows.items():
            assert row["available"] is True  # the fixture warmed everything
            assert row["key"] == experiment_store_key(name, options)
            assert row["description"]
            # tables is assembled analytically (0 sweep jobs); every
            # figure sweeps at least one kernel config.
            assert isinstance(row["jobs"], int) and row["jobs"] >= 0
            assert isinstance(row["uses_scale"], bool)
        assert any(row["jobs"] > 0 for row in rows.values())

    def test_catalog_availability_tracks_the_store(self, tmp_path):
        srv = CacheServer(("127.0.0.1", 0), root=tmp_path / "cold")
        srv.start_in_background()
        try:
            status, _, body = fetch(f"{srv.url}/v1/experiments")
            assert status == 200
            assert all(
                row["available"] is False
                for row in json.loads(body)["experiments"]
            )
        finally:
            srv.shutdown()
            srv.server_close()


# ---------------------------------------------------------------------- #
#  Round trip: served bytes == CLI export bytes, for every experiment
# ---------------------------------------------------------------------- #


class TestRoundTrip:
    @pytest.mark.parametrize("name", experiment_names())
    def test_served_bytes_match_cli_export(
        self, name, read_server, warm_store_dir, tmp_path
    ):
        doc_url = f"{read_server.url}/v1/experiments/{name}?scale={SCALE}"
        key = experiment_store_key(name, ExperimentOptions(scale=SCALE))

        # JSON: default representation, ETag is the bare store key.
        expected_json = cli_export_bytes(warm_store_dir, name, "json", tmp_path)
        status, headers, body = fetch(doc_url)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert headers["ETag"] == f'"{key}"'
        assert body == expected_json

        # The served result still matches the checked-in schema golden.
        golden_path = os.path.join(GOLDEN_DIR, f"{name}_export_schema.json")
        with open(golden_path) as handle:
            golden = json.load(handle)
        assert schema_outline(json.loads(body)["result"]) == golden

        # CSV via Accept negotiation: same bytes as the CLI CSV export.
        expected_csv = cli_export_bytes(warm_store_dir, name, "csv", tmp_path)
        status, headers, body = fetch(doc_url, headers={"Accept": "text/csv"})
        assert status == 200
        assert headers["Content-Type"].startswith("text/csv")
        assert headers["ETag"] == f'"{key}.csv"'
        assert body == expected_csv
        assert body.count(b"\n") == body.count(b"\r\n") > 0

    def test_format_param_overrides_accept(self, read_server):
        url = f"{read_server.url}/v1/experiments/tables?scale={SCALE}&format=json"
        status, headers, _ = fetch(url, headers={"Accept": "text/csv"})
        assert status == 200
        assert headers["Content-Type"] == "application/json"


# ---------------------------------------------------------------------- #
#  Conditional requests
# ---------------------------------------------------------------------- #


class TestConditionalRequests:
    def test_etag_revalidation_answers_304_with_empty_body(self, read_server):
        url = f"{read_server.url}/v1/experiments/tables?scale={SCALE}"
        status, headers, body = fetch(url)
        assert status == 200
        etag = headers["ETag"]
        revalidated_before = read_server.stats()["experiment_not_modified"]

        status, headers, body = fetch(url, headers={"If-None-Match": etag})
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag
        after = read_server.stats()["experiment_not_modified"]
        assert after == revalidated_before + 1

    def test_csv_and_json_etags_never_validate_each_other(self, read_server):
        url = f"{read_server.url}/v1/experiments/tables?scale={SCALE}"
        _, json_headers, _ = fetch(url)
        _, csv_headers, _ = fetch(url, headers={"Accept": "text/csv"})
        assert json_headers["ETag"] != csv_headers["ETag"]
        # A JSON validator on a CSV request must re-send the full body.
        status, _, body = fetch(
            url,
            headers={"Accept": "text/csv", "If-None-Match": json_headers["ETag"]},
        )
        assert status == 200 and body

    def test_stale_etag_gets_a_full_response(self, read_server):
        url = f"{read_server.url}/v1/experiments/tables?scale={SCALE}"
        status, _, body = fetch(url, headers={"If-None-Match": '"00" * 32'})
        assert status == 200 and body

    def test_wildcard_and_weak_validators_match(self, read_server):
        url = f"{read_server.url}/v1/experiments/tables?scale={SCALE}"
        _, headers, _ = fetch(url)
        for validator in ("*", f"W/{headers['ETag']}", f'"junk", {headers["ETag"]}'):
            status, _, _ = fetch(url, headers={"If-None-Match": validator})
            assert status == 304, validator


# ---------------------------------------------------------------------- #
#  Pagination
# ---------------------------------------------------------------------- #


class TestPagination:
    def all_rows(self, read_server):
        """Every row of the tables document, through the paging code path
        itself -- the server renders rows from the raw store record, whose
        dict order a client-side re-parse of the sorted-keys JSON document
        does not reproduce."""
        _, _, body = fetch(
            f"{read_server.url}/v1/experiments/tables"
            f"?scale={SCALE}&offset=0&limit=100000"
        )
        return json.loads(body)["rows"]

    def test_json_window_carries_total_and_slice(self, read_server):
        rows = self.all_rows(read_server)
        assert len(rows) > 3
        url = (
            f"{read_server.url}/v1/experiments/tables"
            f"?scale={SCALE}&offset=1&limit=2"
        )
        status, headers, body = fetch(url)
        assert status == 200
        page = json.loads(body)
        assert page["rows"] == rows[1:3]
        assert page["total_rows"] == len(rows)
        assert page["offset"] == 1 and page["limit"] == 2
        # Paged representations get their own validator.
        assert headers["ETag"].endswith('.1.2"')

    def test_row_count_matches_the_document_row_view(self, read_server):
        _, _, body = fetch(
            f"{read_server.url}/v1/experiments/tables?scale={SCALE}"
        )
        assert len(self.all_rows(read_server)) == len(
            export_rows(json.loads(body))
        )

    def test_csv_pages_share_the_full_document_header(self, read_server):
        base = f"{read_server.url}/v1/experiments/tables?scale={SCALE}&format=csv"
        _, _, full = fetch(base)
        _, _, page = fetch(base + "&offset=0&limit=1")
        header = full.split(b"\r\n", 1)[0]
        assert page.split(b"\r\n", 1)[0] == header
        assert page.count(b"\r\n") == 2  # header + one row

    def test_offset_past_the_end_is_an_empty_page(self, read_server):
        url = (
            f"{read_server.url}/v1/experiments/tables"
            f"?scale={SCALE}&offset=100000&limit=5"
        )
        status, _, body = fetch(url)
        assert status == 200
        assert json.loads(body)["rows"] == []

    def test_bad_parameters_are_400(self, read_server):
        base = f"{read_server.url}/v1/experiments/tables"
        for query in ("scale=huge", "format=xml", "offset=-1", "limit=x"):
            status, _, body = fetch(f"{base}?{query}")
            assert status == 400, query
            assert "error" in json.loads(body)


# ---------------------------------------------------------------------- #
#  Misses
# ---------------------------------------------------------------------- #


class TestMisses:
    def test_unknown_experiment_404_lists_the_registry(self, read_server):
        status, _, body = fetch(f"{read_server.url}/v1/experiments/figure99")
        assert status == 404
        answer = json.loads(body)
        assert "figure99" in answer["error"]
        assert answer["experiments"] == experiment_names()

    def test_cold_options_404_with_key_and_warming_hint(self, read_server):
        name = next(
            name for name in experiment_names()
            if get_experiment(name).uses_scale
        )
        # A scale nobody warmed: different store key, so a miss -- the API
        # must report, never simulate.
        url = f"{read_server.url}/v1/experiments/{name}?scale=0.37"
        misses_before = read_server.stats()["experiment_misses"]
        status, _, body = fetch(url)
        assert status == 404
        answer = json.loads(body)
        assert answer["key"] == experiment_store_key(
            name, ExperimentOptions(scale=0.37)
        )
        assert f"python -m repro run {name} --scale 0.37" in answer["hint"]
        assert read_server.stats()["experiment_misses"] == misses_before + 1


# ---------------------------------------------------------------------- #
#  Auth: the read surface stays open on a token-protected server
# ---------------------------------------------------------------------- #


class TestReadRoutesStayTokenFree:
    def test_reads_open_mutations_gated(self, tmp_path):
        srv = CacheServer(
            ("127.0.0.1", 0), root=tmp_path / "server", token="read-api-secret"
        )
        srv.start_in_background()
        try:
            status, _, _ = fetch(f"{srv.url}/v1/experiments")
            assert status == 200  # catalog: no token needed
            status, _, _ = fetch(f"{srv.url}/v1/experiments/tables")
            assert status == 404  # cold miss, not a 401

            body = json.dumps({"schema": 1, "result": {}}).encode()
            for method, route in (
                ("PUT", f"/v1/entry/{'ab' * 32}"),
                ("POST", "/v1/queue/enqueue"),
            ):
                request = urllib.request.Request(
                    srv.url + route, data=body, method=method
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request)
                assert excinfo.value.code == 401
        finally:
            srv.shutdown()
            srv.server_close()


# ---------------------------------------------------------------------- #
#  Concurrency: thousands of keep-alive reads, bounded latency
# ---------------------------------------------------------------------- #


class TestConcurrentReads:
    THREADS = 16
    REQUESTS_EACH = 128  # 2048 requests total

    def test_server_sustains_concurrent_keep_alive_readers(self, read_server):
        host, port = read_server.server_address[:2]
        path = f"/v1/experiments/tables?scale={SCALE}"
        _, headers, _ = fetch(f"{read_server.url}{path}")
        etag = headers["ETag"]

        latencies = []
        failures = []
        lock = threading.Lock()

        def reader(worker_index):
            connection = http.client.HTTPConnection(host, port, timeout=30)
            local_latencies = []
            try:
                for index in range(self.REQUESTS_EACH):
                    # Mostly revalidations (the warm-CDN shape this API is
                    # for), with a full read every 8th request.
                    conditional = (index + worker_index) % 8 != 0
                    request_headers = (
                        {"If-None-Match": etag} if conditional else {}
                    )
                    started = time.perf_counter()
                    connection.request("GET", path, headers=request_headers)
                    response = connection.getresponse()
                    body = response.read()
                    local_latencies.append(time.perf_counter() - started)
                    if conditional and (response.status != 304 or body):
                        raise AssertionError(
                            f"expected empty 304, got {response.status} "
                            f"({len(body)} bytes)"
                        )
                    if not conditional and response.status != 200:
                        raise AssertionError(f"expected 200, got {response.status}")
            except Exception as error:  # noqa: BLE001 - collected for the report
                with lock:
                    failures.append(f"reader {worker_index}: {error!r}")
            finally:
                connection.close()
                with lock:
                    latencies.extend(local_latencies)

        threads = [
            threading.Thread(target=reader, args=(index,), name=f"reader-{index}")
            for index in range(self.THREADS)
        ]
        elapsed = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        elapsed = time.perf_counter() - elapsed

        assert not failures, failures
        assert len(latencies) == self.THREADS * self.REQUESTS_EACH
        mean = sum(latencies) / len(latencies)
        worst = max(latencies)
        # Deliberately loose bounds: this is a "no pathological serialization
        # or per-request store parse" gate, not a microbenchmark.
        assert mean < 0.25, f"mean latency {mean * 1000:.1f}ms"
        assert worst < 10.0, f"worst latency {worst:.2f}s"
        assert elapsed < 90.0, f"2048 reads took {elapsed:.1f}s"


# ---------------------------------------------------------------------- #
#  Static dataset exporter
# ---------------------------------------------------------------------- #


class TestStaticExport:
    def test_export_all_renders_every_experiment(
        self, warm_store_dir, tmp_path, capsys
    ):
        site = tmp_path / "site"
        argv = ["--cache-dir", warm_store_dir, "export", "--all",
                "--scale", str(SCALE), "--out", str(site)]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert f"exported {len(experiment_names())} experiments" in out
        assert "zero simulation" in out

        manifest = json.loads((site / "index.json").read_text())
        names = [entry["name"] for entry in manifest["experiments"]]
        assert names == experiment_names()
        assert manifest["options"]["scale"] == SCALE
        for entry in manifest["experiments"]:
            for fmt in ("json", "csv"):
                path = site / entry["files"][fmt]
                assert path.is_file()
                assert path.stat().st_size == entry["bytes"][fmt]
            assert entry["rows"] > 0
            assert entry["key"] == experiment_store_key(
                entry["name"], ExperimentOptions(scale=SCALE)
            )

        # The manifest shape is pinned (regenerate with
        # ``PYTHONPATH=src python tests/test_read_api.py --update-manifest-schema``).
        with open(os.path.join(GOLDEN_DIR, "export_manifest_schema.json")) as handle:
            golden = json.load(handle)
        assert schema_outline(manifest) == golden

    def test_exported_files_are_byte_identical_to_cli_and_api(
        self, warm_store_dir, read_server, tmp_path
    ):
        site = tmp_path / "site"
        argv = ["--cache-dir", warm_store_dir, "export", "tables",
                "--scale", str(SCALE), "--out", str(site)]
        assert cli_main(argv) == 0
        expected = cli_export_bytes(warm_store_dir, "tables", "json", tmp_path)
        assert (site / "tables.json").read_bytes() == expected
        _, _, served = fetch(
            f"{read_server.url}/v1/experiments/tables?scale={SCALE}"
        )
        assert served == expected
        csv_expected = cli_export_bytes(warm_store_dir, "tables", "csv", tmp_path)
        assert (site / "tables.csv").read_bytes() == csv_expected

    def test_cold_store_fails_loudly_and_writes_nothing(self, tmp_path, capsys):
        site = tmp_path / "site"
        argv = ["--cache-dir", str(tmp_path / "cold"), "export", "--all",
                "--out", str(site)]
        assert cli_main(argv) == 1
        err = capsys.readouterr().err
        for name in experiment_names():
            assert f"export: {name}: not in store" in err
        assert "warm it with" in err
        assert "nothing written" in err
        assert not site.exists()  # all-or-nothing: no partial dataset

    def test_partial_store_reports_only_the_missing(
        self, warm_store_dir, tmp_path, capsys
    ):
        # Warm store, but asking for an unwarmed scale on a scale-sensitive
        # experiment: exactly the scale-dependent ones go missing.
        site = tmp_path / "site"
        argv = ["--cache-dir", warm_store_dir, "export", "--all",
                "--scale", "0.37", "--out", str(site)]
        assert cli_main(argv) == 1
        err = capsys.readouterr().err
        scale_free = [
            name for name in experiment_names()
            if not get_experiment(name).uses_scale
        ]
        for name in scale_free:
            assert f"export: {name}:" not in err
        assert not site.exists()

    def test_unknown_or_missing_names_are_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiments"):
            cli_main(["--cache-dir", str(tmp_path), "export", "figure99"])
        with pytest.raises(SystemExit, match="--all"):
            cli_main(["--cache-dir", str(tmp_path), "export"])


# ---------------------------------------------------------------------- #
#  Golden regeneration:
#  PYTHONPATH=src python tests/test_read_api.py --update-manifest-schema
# ---------------------------------------------------------------------- #


def _update_manifest_schema_golden() -> None:
    """Re-pin the export manifest outline.

    ``schema_outline`` collapses lists to their first element's shape, so a
    one-experiment export of the cheap ``tables`` experiment pins the same
    outline a full ``--all`` export produces.
    """
    import tempfile

    os.environ.pop("REPRO_REMOTE_CACHE", None)
    cache_dir = tempfile.mkdtemp(prefix="repro-manifest-cache-")
    site = os.path.join(tempfile.mkdtemp(), "site")
    assert cli_main(["--cache-dir", cache_dir, "run", "tables",
                     "--scale", str(SCALE), "--no-progress"]) == 0
    assert cli_main(["--cache-dir", cache_dir, "export", "tables",
                     "--scale", str(SCALE), "--out", site]) == 0
    with open(os.path.join(site, "index.json")) as handle:
        manifest = json.load(handle)
    golden_path = os.path.join(GOLDEN_DIR, "export_manifest_schema.json")
    with open(golden_path, "w") as handle:
        json.dump(schema_outline(manifest), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"updated {golden_path}")


if __name__ == "__main__":
    import sys

    if "--update-manifest-schema" in sys.argv:
        _update_manifest_schema_golden()
    else:
        raise SystemExit(
            "usage: PYTHONPATH=src python tests/test_read_api.py "
            "--update-manifest-schema"
        )
