"""Unit tests for the MVE ISA layer: data types, stride encoding, registers,
instructions."""

import numpy as np
import pytest

from repro.isa import (
    ArithmeticInstruction,
    ConfigInstruction,
    ControlRegisters,
    DataType,
    InstructionCategory,
    MemoryInstruction,
    MoveInstruction,
    Opcode,
    PhysicalRegisterFile,
    ScalarBlock,
    StrideMode,
    VectorShape,
    parse_suffix,
    resolve_strides,
    MAX_MASK_ELEMENTS,
)


class TestDataTypes:
    def test_all_types_have_consistent_width(self):
        for dtype in DataType:
            assert dtype.bits == dtype.numpy_dtype.itemsize * 8
            assert dtype.bytes * 8 == dtype.bits

    @pytest.mark.parametrize(
        "suffix,expected",
        [("b", DataType.INT8), ("w", DataType.INT16), ("dw", DataType.INT32),
         ("qw", DataType.INT64), ("hf", DataType.FLOAT16), ("f", DataType.FLOAT32)],
    )
    def test_parse_suffix(self, suffix, expected):
        assert parse_suffix(suffix) is expected

    def test_parse_unknown_suffix_raises(self):
        with pytest.raises(ValueError):
            parse_suffix("xx")

    def test_float_types_flagged(self):
        assert DataType.FLOAT32.is_float
        assert DataType.FLOAT16.is_float
        assert not DataType.INT32.is_float

    def test_signedness(self):
        assert DataType.INT8.is_signed
        assert not DataType.UINT8.is_signed

    def test_six_primary_types_of_the_paper(self):
        suffixes = {"b", "w", "dw", "qw", "hf", "f"}
        assert suffixes <= {d.suffix for d in DataType}


class TestStrideModes:
    def test_mode_zero_is_replication(self):
        assert resolve_strides([0], [4], [0]) == [0]

    def test_mode_one_is_sequential(self):
        assert resolve_strides([1], [4], [0]) == [1]

    def test_mode_two_multiplies_lower_dimension(self):
        strides = resolve_strides([1, 2], [8, 4], [0, 0])
        assert strides == [1, 8]

    def test_mode_two_chains_across_dimensions(self):
        strides = resolve_strides([1, 2, 2], [8, 4, 2], [0, 0, 0])
        assert strides == [1, 8, 32]

    def test_mode_two_on_innermost_degenerates_to_one(self):
        assert resolve_strides([2], [8], [0]) == [1]

    def test_mode_three_uses_stride_register(self):
        strides = resolve_strides([1, 3], [8, 4], [0, 640])
        assert strides == [1, 640]

    def test_too_many_dimensions_rejected(self):
        with pytest.raises(ValueError):
            resolve_strides([1] * 5, [2] * 5, [0] * 5)

    def test_stride_mode_enum_values(self):
        assert int(StrideMode.ZERO) == 0
        assert int(StrideMode.ONE) == 1
        assert int(StrideMode.SEQUENTIAL) == 2
        assert int(StrideMode.REGISTER) == 3


class TestVectorShape:
    def test_total_elements(self):
        assert VectorShape((3, 2, 4)).total_elements == 24

    def test_flatten_dim0_fastest(self):
        shape = VectorShape((3, 2))
        assert shape.flatten_index((0, 0)) == 0
        assert shape.flatten_index((1, 0)) == 1
        assert shape.flatten_index((0, 1)) == 3
        assert shape.flatten_index((2, 1)) == 5

    def test_unflatten_is_inverse(self):
        shape = VectorShape((3, 2, 4))
        for lane in range(shape.total_elements):
            assert shape.flatten_index(shape.unflatten_lane(lane)) == lane

    def test_out_of_range_index_rejected(self):
        with pytest.raises(IndexError):
            VectorShape((3, 2)).flatten_index((3, 0))

    def test_bad_dimension_count_rejected(self):
        with pytest.raises(ValueError):
            VectorShape(())
        with pytest.raises(ValueError):
            VectorShape((1, 1, 1, 1, 1))

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            VectorShape((0, 4))


class TestPhysicalRegisterFile:
    def test_default_engine_has_8192_lanes(self):
        assert PhysicalRegisterFile().simd_lanes == 8192

    @pytest.mark.parametrize("bits,expected", [(8, 32), (16, 16), (32, 8), (64, 4)])
    def test_register_count_depends_on_width(self, bits, expected):
        assert PhysicalRegisterFile().register_count(bits) == expected

    def test_register_count_rejects_zero_width(self):
        with pytest.raises(ValueError):
            PhysicalRegisterFile().register_count(0)


class TestControlRegisters:
    def test_defaults(self):
        cr = ControlRegisters()
        assert cr.dim_count == 1
        assert cr.shape.total_elements == 1

    def test_set_dimensions(self):
        cr = ControlRegisters()
        cr.set_dim_count(3)
        cr.set_dim_length(0, 8)
        cr.set_dim_length(1, 4)
        cr.set_dim_length(2, 2)
        assert cr.shape.lengths == (8, 4, 2)

    def test_dim_count_bounds(self):
        cr = ControlRegisters()
        with pytest.raises(ValueError):
            cr.set_dim_count(0)
        with pytest.raises(ValueError):
            cr.set_dim_count(5)

    def test_mask_defaults_enabled(self):
        cr = ControlRegisters()
        cr.set_dim_count(2)
        cr.set_dim_length(1, 4)
        assert cr.active_mask() == [True] * 4

    def test_mask_set_and_reset(self):
        cr = ControlRegisters()
        cr.set_dim_count(2)
        cr.set_dim_length(1, 4)
        cr.set_mask(1, False)
        assert cr.active_mask() == [True, False, True, True]
        cr.reset_mask()
        assert cr.active_mask() == [True] * 4

    def test_mask_coarsens_beyond_256_elements(self):
        cr = ControlRegisters()
        cr.set_dim_count(1)
        cr.set_dim_length(0, 512)
        cr.set_mask(0, False)
        mask = cr.active_mask()
        assert len(mask) == 512
        # the first mask bit covers a group of two elements
        assert mask[0] is False and mask[1] is False and mask[2] is True

    def test_element_width_validation(self):
        cr = ControlRegisters()
        cr.set_element_bits(16)
        assert cr.element_bits == 16
        with pytest.raises(ValueError):
            cr.set_element_bits(12)

    def test_copy_is_independent(self):
        cr = ControlRegisters()
        clone = cr.copy()
        clone.set_dim_length(0, 77)
        assert cr.dim_lengths[0] != 77

    def test_max_mask_elements_constant(self):
        assert MAX_MASK_ELEMENTS == 256


class TestInstructions:
    def test_categories(self):
        assert ConfigInstruction(Opcode.SET_DIM_COUNT).category is InstructionCategory.CONFIG
        assert MoveInstruction(Opcode.COPY).category is InstructionCategory.MOVE
        assert MemoryInstruction(Opcode.STRIDED_LOAD).category is InstructionCategory.MEMORY
        assert ArithmeticInstruction(Opcode.ADD).category is InstructionCategory.ARITHMETIC

    def test_memory_instruction_active_elements_with_mask(self):
        instr = MemoryInstruction(
            Opcode.STRIDED_LOAD,
            shape_lengths=(4, 3),
            mask=(True, False, True),
        )
        assert instr.total_elements == 12
        assert instr.active_elements() == 8

    def test_memory_instruction_unmasked(self):
        instr = MemoryInstruction(Opcode.STRIDED_LOAD, shape_lengths=(4, 3))
        assert instr.active_elements() == 12

    def test_scalar_block_validation(self):
        with pytest.raises(ValueError):
            ScalarBlock(count=-1)
        with pytest.raises(ValueError):
            ScalarBlock(count=2, loads=2, stores=1)

    def test_assembly_strings(self):
        instr = MemoryInstruction(
            Opcode.STRIDED_LOAD, dtype=DataType.INT32, register=3,
            base_address=0x1000, stride_modes=(1, 2),
        )
        text = instr.assembly()
        assert "vsld_dw" in text and "0x1000" in text

    def test_vector_memory_flag(self):
        assert MemoryInstruction(Opcode.RANDOM_STORE).is_vector_memory
        assert not ArithmeticInstruction(Opcode.ADD).is_vector_memory
