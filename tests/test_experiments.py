"""Tests for the experiment modules (tables and figures).

The figure experiments are exercised at reduced scales / kernel subsets so
the test suite stays fast; the full-scale runs live in ``benchmarks/``.
"""

import pytest

from repro.experiments import (
    ExperimentRunner,
    FIGURE8_KERNELS,
    FIGURE10_KERNELS,
    format_table,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12a,
    run_figure12b,
    run_figure12c,
    run_figure13,
    table1_isa_comparison,
    table2_instruction_latencies,
    table3_libraries,
    table5_area,
    table5_summary,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(default_scale=0.1)


class TestTables:
    def test_table1_features(self):
        table = table1_isa_comparison()
        assert set(table) == {"MVE", "RISC-V RVV", "Arm SVE", "NEC"}
        assert "4D" in table["MVE"]["strided_access"]
        assert "dimension-level" in table["MVE"]["masked_execution"]

    def test_table2_latencies_match_formulas(self):
        rows = {row.opcode: row for row in table2_instruction_latencies(32)}
        assert rows["vadd"].latency_32bit == 32
        assert rows["vsub"].latency_32bit == 64
        assert rows["vmul"].latency_32bit == 32 * 32 + 5 * 32

    def test_table3_counts(self):
        rows = table3_libraries()
        assert len(rows) == 12
        assert sum(row["num_kernels"] for row in rows) >= 30

    def test_table5_overhead(self):
        summary = table5_summary()
        assert summary["mve_overhead_percent"] == pytest.approx(3.6, abs=0.2)
        assert summary["neon_overhead_percent"] > summary["mve_overhead_percent"]
        report = table5_area()
        assert set(report.modules_mm2) >= {"controller", "tmu", "fsm", "mshr"}

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [30, 40]])
        assert "30" in text and "a" in text


class TestFigure7:
    def test_single_library_comparison(self, runner):
        result = run_figure7(runner, scale=0.1, libraries=["Skia", "zlib"])
        assert len(result.libraries) == 2
        for library in result.libraries:
            assert library.speedup > 0
            assert library.energy_ratio > 0
            total = (
                library.idle_fraction + library.compute_fraction + library.data_fraction
            )
            assert total == pytest.approx(1.0, abs=0.05)

    def test_normalized_percent_inverse_of_speedup(self, runner):
        result = run_figure7(runner, scale=0.1, libraries=["Skia"])
        lib = result.libraries[0]
        assert lib.normalized_time_percent == pytest.approx(100.0 / lib.speedup)


class TestFigure8And9:
    def test_figure8_subset(self, runner):
        import repro.experiments.figure8 as f8

        original = f8.FIGURE8_KERNELS
        try:
            f8.FIGURE8_KERNELS = ("csum", "gemm")
            result = f8.run_figure8(runner, scale=0.1)
        finally:
            f8.FIGURE8_KERNELS = original
        assert len(result.kernels) == 2
        for row in result.kernels:
            assert row.time_ratio_with_transfer > 0
            assert 0 <= row.gpu_transfer_fraction <= 1

    def test_figure9_crossover_shape(self, runner):
        result = run_figure9(
            runner,
            gemm_sweep=((16, 16, 16), (128, 128, 128)),
            spmm_sweep=((16, 32, 16, 4),),
        )
        assert len(result.gemm_points) == 2
        # The small problem must favour MVE (GPU launch overhead dominates).
        assert result.gemm_points[0].mve_wins


class TestFigure10And11:
    @pytest.fixture(scope="class")
    def fig10(self):
        import repro.experiments.figure10 as f10

        original = f10.FIGURE10_KERNELS
        try:
            f10.FIGURE10_KERNELS = (("csum", "1D"), ("gemm", "2D"), ("intra", "3D"))
            runner = ExperimentRunner(default_scale=0.1)
            result = f10.run_figure10(runner)
        finally:
            f10.FIGURE10_KERNELS = original
        return result

    def test_mve_not_slower_than_rvv(self, fig10):
        assert fig10.mean_speedup_over_rvv >= 1.0

    def test_multidim_kernels_benefit_more(self, fig10):
        by_name = {row.kernel: row for row in fig10.kernels}
        assert by_name["gemm"].vector_instruction_ratio > by_name["csum"].vector_instruction_ratio

    def test_figure11_consistent_with_figure10(self, fig10):
        result = run_figure11(figure10=fig10)
        assert len(result.kernels) == len(fig10.kernels)
        for mix in result.kernels:
            assert sum(mix.rvv_counts.values()) >= sum(mix.mve_counts.values()) * 0.5


class TestFigure12And13:
    def test_duality_cache_slower(self, runner):
        rows = run_figure12a(runner, kernels=("fir_s",))
        assert rows[0].dc_over_mve_time > 1.0

    def test_scalability_improves_with_arrays(self, runner):
        points = run_figure12b(runner, kernels=("fir_l",), array_counts=(8, 32))
        assert points[0].num_arrays == 8 and points[0].normalized_time == 1.0
        assert points[1].normalized_time < 1.0

    def test_precision_sweep_lower_is_faster(self):
        points = run_figure12c()
        by_name = {p.precision: p for p in points}
        assert by_name["INT16"].normalized_time < by_name["FLOAT32"].normalized_time
        assert by_name["INT16"].speedup_over_neon > by_name["FLOAT32"].speedup_over_neon

    def test_figure13_all_schemes_benefit(self):
        runner = ExperimentRunner(default_scale=0.1)
        result = run_figure13(runner, kernels=("gemm",), schemes=("bit-serial", "associative"))
        bs = result.speedup_for("bit-serial")
        ac = result.speedup_for("associative")
        assert bs >= 1.0
        # associative computing benefits least from the multi-dimensional ISA
        assert bs >= ac
