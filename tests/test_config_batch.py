"""Parity and counter suite for the config-batched replay engine.

The tentpole contract, pinned bit-for-bit:

* ``simulate_trace_batch`` reproduces per-config ``simulate_trace`` exactly
  -- the full ``SimulationResult`` dict including cache/DRAM statistics,
  plus compile spill counts -- across the compute-scheme axis, the cache
  geometry axis, the DRAM timing axis, and mixed axes that force a
  compiled-kernel split inside one batch,
* the sweep engine's batched path is bit-identical to the
  ``REPRO_BATCHED_REPLAY=0`` escape hatch over the deduped job sets of
  every registered experiment, and
* the engine counters stay honest: a warm sweep counts one trace-store hit
  per distinct spec regardless of ``--jobs``, and an eight-config
  single-trace sweep replays exactly once.
"""

import dataclasses

import pytest

from repro.core.cache import ResultStore
from repro.core.config import default_config
from repro.core.replay import batched_replay_enabled, replay_group_key
from repro.core.simulator import simulate_trace, simulate_trace_batch
from repro.core.traces import TraceSpec
from repro.experiments.registry import all_experiments
from repro.experiments.sweep import (
    KernelJob,
    ParallelSweepEngine,
    SweepSpec,
    batch_partitions,
    simulate_traced_group,
)
from repro.memory import CacheConfig, DRAMConfig, HierarchyConfig
from repro.sram.array import EngineGeometry, SramArrayGeometry
from repro.sram.schemes import SCHEME_NAMES


@pytest.fixture(scope="module")
def csum_trace():
    return TraceSpec("csum", "mve", 0.25).capture().trace


@pytest.fixture(scope="module")
def gemm_trace():
    return TraceSpec("gemm", "mve", 0.25).capture().trace


def shrunk_rows_config():
    """Same SIMD lane count (so the same captured trace applies) but a
    different register-file geometry: forces a compile split in a batch."""
    engine = EngineGeometry(array=SramArrayGeometry(rows=128, cols=256))
    return dataclasses.replace(default_config(), engine=engine)


def assert_batch_parity(trace, configs):
    batched = simulate_trace_batch(trace, configs)
    assert len(batched) == len(configs)
    for config, (result, compiled) in zip(configs, batched):
        expected, expected_compiled = simulate_trace(trace, config=config)
        assert result.to_dict() == expected.to_dict()
        assert compiled.spill_count == expected_compiled.spill_count


class TestSimulateTraceBatchParity:
    """simulate_trace_batch vs per-config simulate_trace, axis by axis."""

    def test_scheme_axis(self, csum_trace):
        configs = [default_config().with_scheme(name) for name in SCHEME_NAMES]
        assert_batch_parity(csum_trace, configs)

    def test_cache_geometry_axis(self, csum_trace):
        base = default_config()
        small_l2 = HierarchyConfig(
            l2=CacheConfig(name="L2", size_bytes=256 * 1024, ways=8, hit_latency=12, mshr_entries=46)
        )
        configs = [
            dataclasses.replace(base, hierarchy=hierarchy, l2_compute_ways=ways)
            for hierarchy in (HierarchyConfig(), small_l2)
            for ways in (4, 6)
        ]
        assert_batch_parity(csum_trace, configs)

    def test_dram_axis(self, gemm_trace):
        base = default_config()
        variants = [
            DRAMConfig(),
            DRAMConfig(t_cas=60, t_rcd=70, t_rp=70),  # timing-only: shares one replay
            DRAMConfig(num_channels=2, num_banks=4),  # structure change: own memory pass
        ]
        configs = [
            dataclasses.replace(base, hierarchy=HierarchyConfig(dram=dram))
            for dram in variants
        ]
        assert_batch_parity(gemm_trace, configs)

    def test_mixed_axis_with_compile_split(self, gemm_trace):
        base = default_config()
        configs = [
            base,
            base.with_scheme("bit-parallel"),
            dataclasses.replace(base, sram_cycle_multiplier=2.0),
            dataclasses.replace(base, hierarchy=HierarchyConfig(dram=DRAMConfig(t_cas=60))),
            shrunk_rows_config(),
            shrunk_rows_config().with_scheme("associative"),
        ]
        assert len({replay_group_key(config) for config in configs}) == 2
        assert_batch_parity(gemm_trace, configs)

    def test_escape_hatch_falls_back_per_config(self, csum_trace, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED_REPLAY", "0")
        assert not batched_replay_enabled()
        configs = [default_config().with_scheme(name) for name in SCHEME_NAMES[:2]]
        assert_batch_parity(csum_trace, configs)

    def test_scalar_cache_mode_disables_batching(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCHED_REPLAY", raising=False)
        monkeypatch.setenv("REPRO_SCALAR_CACHE", "1")
        assert not batched_replay_enabled()

    def test_single_config_batch(self, csum_trace):
        assert_batch_parity(csum_trace, [default_config()])


class TestEngineEnvParity:
    """Acceptance: REPRO_BATCHED_REPLAY=0 is bit-identical to the batched
    default across the deduped job sets of all registered experiments."""

    @pytest.fixture(scope="class")
    def trace_groups(self):
        experiments = all_experiments()
        assert len(experiments) == 11
        jobs = []
        for experiment in experiments:
            jobs.extend(experiment.jobs())
        groups = {}
        for job in dict.fromkeys(jobs):
            groups.setdefault(job.trace_spec(), []).append(job)
        return groups

    def test_batched_matches_legacy_for_every_experiment_job(
        self, trace_groups, monkeypatch
    ):
        for spec, jobs in trace_groups.items():
            trace = spec.capture().trace
            monkeypatch.delenv("REPRO_BATCHED_REPLAY", raising=False)
            batched = simulate_traced_group(jobs, trace)
            monkeypatch.setenv("REPRO_BATCHED_REPLAY", "0")
            legacy = simulate_traced_group(jobs, trace)
            monkeypatch.delenv("REPRO_BATCHED_REPLAY")
            for job, got, want in zip(jobs, batched, legacy):
                assert got.result.to_dict() == want.result.to_dict(), job.describe()
                assert got.spills == want.spills, job.describe()


def eight_config_jobs():
    """One trace spec, eight configurations: 4 schemes x 2 l2_compute_ways."""
    base = default_config()
    jobs = [
        KernelJob(
            kernel="csum",
            scale=0.25,
            scheme_name=scheme,
            config=dataclasses.replace(base.with_scheme(scheme), l2_compute_ways=ways),
        )
        for scheme in SCHEME_NAMES
        for ways in (4, 6)
    ]
    assert len({job.trace_spec() for job in jobs}) == 1
    return jobs


def warm_traces_only(store_root, jobs):
    """Run the sweep once, then drop the results but keep the trace
    artifacts -- the next engine must replay (results cold) from the
    stored captures (traces warm)."""
    ParallelSweepEngine(jobs=1, store=ResultStore(store_root)).run_jobs(jobs)
    trace_keys = {job.trace_spec().cache_key() for job in jobs}
    for path in store_root.glob("*/*.json"):
        if path.stem not in trace_keys:
            path.unlink()


class TestEngineCounters:
    """Satellite: trace_store_hits counts specs, not partitions or jobs."""

    @pytest.mark.parametrize(
        "workers,batched",
        [(1, True), (2, True), (8, True), (2, False)],
        ids=["serial", "pool2", "pool8", "pool2-legacy"],
    )
    def test_warm_sweep_hits_once_per_spec(self, tmp_path, monkeypatch, workers, batched):
        if not batched:
            monkeypatch.setenv("REPRO_BATCHED_REPLAY", "0")
        jobs = SweepSpec(
            name="counters",
            kernels=[("csum", {"scale": 0.25}), ("memcpy", {"scale": 0.25})],
            schemes=SCHEME_NAMES,
        ).jobs()
        specs = {job.trace_spec() for job in jobs}
        assert len(specs) == 2
        warm_traces_only(tmp_path, jobs)

        engine = ParallelSweepEngine(jobs=workers, store=ResultStore(tmp_path))
        outcomes = engine.run_jobs(jobs)
        assert len(outcomes) == len(jobs)
        assert engine.computed == len(jobs)  # results really were cold
        assert engine.traces_captured == 0
        # The fixed counter: one hit per distinct warm spec, not one per
        # replay partition (or per job under the legacy split).
        assert engine.trace_store_hits == len(specs)
        assert engine.batched_replays == (len(specs) if batched else 0)

    def test_eight_config_sweep_replays_once(self, tmp_path):
        jobs = eight_config_jobs()
        warm_traces_only(tmp_path, jobs)

        engine = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path))
        outcomes = engine.run_jobs(jobs)
        assert len(outcomes) == len(jobs)
        assert engine.computed == len(jobs)
        assert engine.traces_captured == 0
        assert engine.trace_store_hits == 1
        assert engine.batched_replays == 1  # the whole axis in one replay

    def test_batch_partitions_split_on_register_geometry(self):
        jobs = [
            KernelJob(kernel="csum", scale=0.25, scheme_name=scheme)
            for scheme in SCHEME_NAMES
        ]
        assert [len(p) for p in batch_partitions(jobs)] == [len(jobs)]

        jobs.append(KernelJob(kernel="csum", scale=0.25, config=shrunk_rows_config()))
        assert len({job.trace_spec() for job in jobs}) == 1  # same lanes
        assert sorted(len(p) for p in batch_partitions(jobs)) == [1, len(jobs) - 1]
