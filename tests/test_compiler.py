"""Unit tests for the compiler pipeline: liveness, scheduling, register allocation."""

import numpy as np
import pytest

from repro.compiler import (
    analyze_liveness,
    allocate_registers,
    compile_trace,
    schedule_trace,
)
from repro.compiler.liveness import defined_register, used_registers
from repro.intrinsics import MVEMachine
from repro.isa import (
    ConfigInstruction,
    DataType,
    InstructionCategory,
    MemoryInstruction,
    Opcode,
    PhysicalRegisterFile,
    ScalarBlock,
)
from repro.memory import FlatMemory


def build_chain_trace(num_values=4, dtype=DataType.INT32):
    """A simple trace: load two vectors, combine them repeatedly, store."""
    memory = FlatMemory()
    machine = MVEMachine(memory)
    a = memory.allocate_array(np.arange(16, dtype=dtype.numpy_dtype), dtype)
    out = memory.allocate(dtype, 16)
    machine.vsetdimc(1)
    machine.vsetdiml(0, 16)
    values = [machine.vsld(dtype, a.address, (1,)) for _ in range(num_values)]
    acc = values[0]
    for value in values[1:]:
        acc = machine.vadd(acc, value)
    machine.vsst(acc, out.address, (1,))
    machine.scalar(4)
    return machine.trace


class TestLiveness:
    def test_def_use_extraction(self):
        trace = build_chain_trace()
        defs = [defined_register(e) for e in trace]
        uses = [used_registers(e) for e in trace]
        assert any(d is not None for d in defs)
        assert any(u for u in uses)

    def test_ranges_cover_uses(self):
        trace = build_chain_trace()
        info = analyze_liveness(trace)
        for reg, rng in info.ranges.items():
            for use in rng.uses:
                assert use >= rng.definition

    def test_widest_bits_detected(self):
        memory = FlatMemory()
        machine = MVEMachine(memory)
        machine.vsetdimc(1)
        machine.vsetdiml(0, 8)
        narrow = machine.vsetdup(DataType.INT8, 1)
        wide = machine.vcvt(narrow, DataType.INT64)
        machine.vadd(wide, wide)
        info = analyze_liveness(machine.trace)
        assert info.widest_bits == 64

    def test_max_live_positive(self):
        info = analyze_liveness(build_chain_trace(num_values=6))
        assert info.max_live >= 2

    def test_scalar_blocks_ignored(self):
        info = analyze_liveness([ScalarBlock(10)])
        assert info.ranges == {}


class TestScheduler:
    def test_preserves_instruction_multiset(self):
        trace = build_chain_trace()
        scheduled = schedule_trace(trace)
        assert len(scheduled) == len(trace)
        assert {id(e) for e in scheduled} == {id(e) for e in trace}

    def test_definitions_precede_uses(self):
        trace = build_chain_trace(num_values=5)
        scheduled = schedule_trace(trace)
        seen = set()
        for entry in scheduled:
            for reg in used_registers(entry):
                # registers defined by loads earlier in the schedule
                if reg in {defined_register(e) for e in trace}:
                    assert reg in seen
            defined = defined_register(entry)
            if defined is not None:
                seen.add(defined)

    def test_barriers_keep_relative_order(self):
        trace = build_chain_trace()
        scheduled = schedule_trace(trace)
        memory_ops = [e for e in scheduled if isinstance(e, MemoryInstruction)]
        original_ops = [e for e in trace if isinstance(e, MemoryInstruction)]
        assert [id(e) for e in memory_ops] == [id(e) for e in original_ops]

    def test_does_not_increase_pressure(self):
        trace = build_chain_trace(num_values=6)
        before = analyze_liveness(trace).max_live
        after = analyze_liveness(schedule_trace(trace)).max_live
        assert after <= before


class TestRegisterAllocation:
    def test_no_spills_when_registers_suffice(self):
        trace = build_chain_trace(num_values=3)
        result = allocate_registers(trace)
        assert result.spill_count == 0
        assert result.element_bits == 32
        assert result.num_physical_registers == 8

    def test_width_config_injected(self):
        result = allocate_registers(build_chain_trace())
        first = result.trace[0]
        assert isinstance(first, ConfigInstruction)
        assert first.opcode is Opcode.SET_WIDTH
        assert first.operand_a == 32

    def test_spills_inserted_under_pressure(self):
        # A tiny register file (2 PRs) forces spilling for a 6-value chain
        # where all loads happen before the adds.
        trace = build_chain_trace(num_values=6)
        tiny = PhysicalRegisterFile(num_arrays=1, array_rows=64, array_cols=16)
        result = allocate_registers(trace, register_file=tiny)
        assert result.num_physical_registers == 2
        assert result.spill_count > 0
        spill_ops = [
            e for e in result.trace if isinstance(e, MemoryInstruction) and e.is_spill
        ]
        assert len(spill_ops) == result.spill_count

    def test_assignments_within_bounds(self):
        trace = build_chain_trace(num_values=5)
        result = allocate_registers(trace)
        assert all(0 <= p < result.num_physical_registers for p in result.assignment.values())

    def test_peak_pressure_bounded_by_register_count(self):
        trace = build_chain_trace(num_values=8)
        tiny = PhysicalRegisterFile(num_arrays=1, array_rows=96, array_cols=16)
        result = allocate_registers(trace, register_file=tiny)
        assert result.peak_pressure <= result.num_physical_registers


class TestPipeline:
    def test_compile_trace_end_to_end(self):
        trace = build_chain_trace()
        compiled = compile_trace(trace)
        assert compiled.element_bits == 32
        assert compiled.spill_count == 0
        assert len(compiled.trace) >= len(trace)

    def test_scheduler_toggle(self):
        trace = build_chain_trace(num_values=6)
        with_sched = compile_trace(trace, use_scheduler=True)
        without = compile_trace(trace, use_scheduler=False)
        assert with_sched.peak_pressure <= without.peak_pressure

    def test_compiled_trace_still_has_all_categories(self):
        compiled = compile_trace(build_chain_trace())
        categories = {
            e.category for e in compiled.trace if not isinstance(e, ScalarBlock)
        }
        assert InstructionCategory.MEMORY in categories
        assert InstructionCategory.ARITHMETIC in categories
        assert InstructionCategory.CONFIG in categories
